// Package trace serializes memory-reference traces: the workload streams
// the generators synthesize can be captured to a file, inspected
// (cmd/tracestat), and replayed into the simulator (cmd/mimdsim
// -trace). Two formats are provided: a compact binary encoding (varint
// delta-coded addresses, the natural archival format) and a line-oriented
// text form that is easy to write by hand for small scenario scripts.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/workload"
)

// Record is one trace entry: a PE index plus the operation it issued.
type Record struct {
	PE int
	Op workload.Op
}

// magic identifies the binary format ("MCT1": MIMD cache trace v1).
var magic = [4]byte{'M', 'C', 'T', '1'}

// ErrBadMagic reports a binary stream that is not a trace.
var ErrBadMagic = errors.New("trace: bad magic (not an MCT1 stream)")

// Writer encodes records to the binary format.
type Writer struct {
	w        *bufio.Writer
	started  bool
	lastAddr map[int]bus.Addr // per-PE last address, for delta coding
	count    int
}

// NewWriter creates a binary trace writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), lastAddr: make(map[int]bus.Addr)}
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if !w.started {
		if _, err := w.w.Write(magic[:]); err != nil {
			return err
		}
		w.started = true
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := w.w.Write(buf[:n])
		return err
	}
	// Header byte: kind in the low 3 bits, class in the next 2.
	head := uint64(r.Op.Kind) | uint64(r.Op.Class)<<3
	if err := put(uint64(r.PE)); err != nil {
		return err
	}
	if err := put(head); err != nil {
		return err
	}
	switch r.Op.Kind {
	case workload.OpRead, workload.OpWrite, workload.OpTestSet:
		// Zig-zag delta against the PE's previous address: locality makes
		// the deltas tiny.
		delta := int64(r.Op.Addr) - int64(w.lastAddr[r.PE])
		w.lastAddr[r.PE] = r.Op.Addr
		n := binary.PutVarint(buf[:], delta)
		if _, err := w.w.Write(buf[:n]); err != nil {
			return err
		}
		if r.Op.Kind != workload.OpRead {
			if err := put(uint64(r.Op.Data)); err != nil {
				return err
			}
		}
	case workload.OpCompute:
		if err := put(uint64(r.Op.Cycles)); err != nil {
			return err
		}
	case workload.OpHalt:
		// No payload.
	default:
		return fmt.Errorf("trace: unencodable op kind %v", r.Op.Kind)
	}
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.count }

// Flush commits buffered output.
func (w *Writer) Flush() error {
	if !w.started {
		if _, err := w.w.Write(magic[:]); err != nil {
			return err
		}
		w.started = true
	}
	return w.w.Flush()
}

// Reader decodes the binary format. Every decode error carries the
// record ordinal and byte offset where the stream went wrong — a
// truncated or corrupt MCT1 file names the damage instead of surfacing
// a bare EOF.
type Reader struct {
	r        *bufio.Reader
	started  bool
	lastAddr map[int]bus.Addr
	off      int64 // bytes consumed so far
	rec      int   // records fully decoded so far
}

// NewReader creates a binary trace reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r), lastAddr: make(map[int]bus.Addr)}
}

// ReadByte implements io.ByteReader over the buffered input while
// keeping the byte-offset counter exact; the varint decoders consume
// through it.
func (r *Reader) ReadByte() (byte, error) {
	b, err := r.r.ReadByte()
	if err == nil {
		r.off++
	}
	return b, err
}

// corrupt wraps a mid-record decode failure with its position. An EOF
// inside a record is a truncation (io.ErrUnexpectedEOF), never a clean
// end.
func (r *Reader) corrupt(field string, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("trace: record %d, byte offset %d: %s: %w", r.rec, r.off, field, err)
}

// Read decodes the next record; io.EOF ends the stream.
func (r *Reader) Read() (Record, error) {
	if !r.started {
		var m [4]byte
		n, err := io.ReadFull(r.r, m[:])
		r.off += int64(n)
		if err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				return Record{}, fmt.Errorf("trace: byte offset %d: truncated magic: %w", r.off, ErrBadMagic)
			}
			return Record{}, err
		}
		if m != magic {
			return Record{}, ErrBadMagic
		}
		r.started = true
	}
	pe64, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF // clean end: the stream stopped on a record boundary
		}
		return Record{}, r.corrupt("pe", err)
	}
	head, err := binary.ReadUvarint(r)
	if err != nil {
		return Record{}, r.corrupt("header", err)
	}
	rec := Record{PE: int(pe64)}
	rec.Op.Kind = workload.OpKind(head & 7)
	rec.Op.Class = coherence.Class(head >> 3 & 3)
	if head>>5 != 0 {
		return Record{}, r.corrupt("header", fmt.Errorf("reserved bits set (0x%x)", head))
	}
	switch rec.Op.Kind {
	case workload.OpRead, workload.OpWrite, workload.OpTestSet:
		delta, err := binary.ReadVarint(r)
		if err != nil {
			return Record{}, r.corrupt("address delta", err)
		}
		addr := bus.Addr(int64(r.lastAddr[rec.PE]) + delta)
		r.lastAddr[rec.PE] = addr
		rec.Op.Addr = addr
		if rec.Op.Kind != workload.OpRead {
			data, err := binary.ReadUvarint(r)
			if err != nil {
				return Record{}, r.corrupt("data word", err)
			}
			rec.Op.Data = bus.Word(data)
		}
	case workload.OpCompute:
		cycles, err := binary.ReadUvarint(r)
		if err != nil {
			return Record{}, r.corrupt("cycle count", err)
		}
		rec.Op.Cycles = int(cycles)
	case workload.OpHalt:
	default:
		return Record{}, r.corrupt("header", fmt.Errorf("undecodable op kind %d", rec.Op.Kind))
	}
	r.rec++
	return rec, nil
}

// ReadAll drains the stream.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Decode parses a whole trace from raw bytes, auto-detecting the
// format: an MCT1 magic prefix selects the binary decoder, anything
// else the text parser.
func Decode(data []byte) ([]Record, error) {
	if len(data) >= len(magic) && [4]byte(data[:4]) == magic {
		return NewReader(bytes.NewReader(data)).ReadAll()
	}
	return ParseText(bytes.NewReader(data))
}

// WriteText encodes records in the line format:
//
//	<pe> read <addr> [class]
//	<pe> write <addr> <value> [class]
//	<pe> ts <addr> <value>
//	<pe> compute <cycles>
//	<pe> halt
//
// Lines starting with '#' and blank lines are comments.
func WriteText(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		line, err := FormatText(r)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FormatText renders one record as a text-format line (no newline).
func FormatText(r Record) (string, error) {
	switch r.Op.Kind {
	case workload.OpRead:
		return fmt.Sprintf("%d read %d %s", r.PE, r.Op.Addr, r.Op.Class), nil
	case workload.OpWrite:
		return fmt.Sprintf("%d write %d %d %s", r.PE, r.Op.Addr, r.Op.Data, r.Op.Class), nil
	case workload.OpTestSet:
		return fmt.Sprintf("%d ts %d %d", r.PE, r.Op.Addr, r.Op.Data), nil
	case workload.OpCompute:
		return fmt.Sprintf("%d compute %d", r.PE, r.Op.Cycles), nil
	case workload.OpHalt:
		return fmt.Sprintf("%d halt", r.PE), nil
	}
	return "", fmt.Errorf("trace: unencodable op kind %v", r.Op.Kind)
}

// TextScanner decodes the line format one record at a time, so tools
// can stream arbitrarily large text traces without buffering them.
type TextScanner struct {
	sc     *bufio.Scanner
	lineNo int
}

// NewTextScanner creates a streaming text-format reader.
func NewTextScanner(rd io.Reader) *TextScanner {
	return &TextScanner{sc: bufio.NewScanner(rd)}
}

// Read decodes the next record; io.EOF ends the stream. Errors carry
// the 1-based line number.
func (s *TextScanner) Read() (Record, error) {
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return parseTextLine(s.lineNo, line)
	}
	if err := s.sc.Err(); err != nil {
		return Record{}, fmt.Errorf("trace: line %d: %w", s.lineNo, err)
	}
	return Record{}, io.EOF
}

// parseTextLine decodes one non-comment line.
func parseTextLine(lineNo int, line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Record{}, fmt.Errorf("trace: line %d: too few fields", lineNo)
	}
	pe, err := strconv.Atoi(fields[0])
	if err != nil || pe < 0 {
		return Record{}, fmt.Errorf("trace: line %d: bad PE %q", lineNo, fields[0])
	}
	rec := Record{PE: pe}
	arg := func(i int) (uint64, error) {
		if i >= len(fields) {
			return 0, fmt.Errorf("trace: line %d: missing argument", lineNo)
		}
		v, err := strconv.ParseUint(fields[i], 10, 32)
		if err != nil {
			return 0, fmt.Errorf("trace: line %d: bad number %q", lineNo, fields[i])
		}
		return v, nil
	}
	classAt := func(i int) coherence.Class {
		if i >= len(fields) {
			return coherence.ClassShared
		}
		switch fields[i] {
		case "code":
			return coherence.ClassCode
		case "local":
			return coherence.ClassLocal
		case "shared":
			return coherence.ClassShared
		default:
			return coherence.ClassUnknown
		}
	}
	switch fields[1] {
	case "read":
		a, err := arg(2)
		if err != nil {
			return Record{}, err
		}
		rec.Op = workload.Read(bus.Addr(a), classAt(3))
	case "write":
		a, err := arg(2)
		if err != nil {
			return Record{}, err
		}
		v, err := arg(3)
		if err != nil {
			return Record{}, err
		}
		rec.Op = workload.Write(bus.Addr(a), bus.Word(v), classAt(4))
	case "ts":
		a, err := arg(2)
		if err != nil {
			return Record{}, err
		}
		v, err := arg(3)
		if err != nil {
			return Record{}, err
		}
		rec.Op = workload.TestSet(bus.Addr(a), bus.Word(v))
	case "compute":
		n, err := arg(2)
		if err != nil {
			return Record{}, err
		}
		rec.Op = workload.Compute(int(n))
	case "halt":
		rec.Op = workload.Halt()
	default:
		return Record{}, fmt.Errorf("trace: line %d: unknown op %q", lineNo, fields[1])
	}
	return rec, nil
}

// ParseText decodes the line format in full.
func ParseText(rd io.Reader) ([]Record, error) {
	var out []Record
	sc := NewTextScanner(rd)
	for {
		rec, err := sc.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// Split demultiplexes a trace into one replay agent per PE. PEs appearing
// in the trace but issuing no final halt simply halt when their records
// run out (workload.Trace semantics).
func Split(recs []Record) map[int]*workload.Trace {
	byPE := map[int][]workload.Op{}
	for _, r := range recs {
		byPE[r.PE] = append(byPE[r.PE], r.Op)
	}
	out := make(map[int]*workload.Trace, len(byPE))
	for pe, ops := range byPE {
		out[pe] = workload.NewTrace(ops...)
	}
	return out
}

// Stats summarizes a trace for cmd/tracestat.
type Stats struct {
	Records   int
	PEs       int
	Reads     int
	Writes    int
	TestSets  int
	Computes  int
	Halts     int
	Addresses int // distinct
	ByClass   map[coherence.Class]int
}

// PEStats is one PE's share of a trace (see Accumulator.PerPE).
type PEStats struct {
	PE        int
	Records   int
	Reads     int
	Writes    int
	TestSets  int
	Computes  int
	Halts     int
	Addresses int // distinct addresses this PE referenced
}

// Accumulator folds records into Stats one at a time, so tools can
// summarize arbitrarily large traces in a single streaming pass.
type Accumulator struct {
	s     Stats
	addrs map[bus.Addr]bool
	perPE map[int]*PEStats
	// peAddrs tracks per-PE distinct addresses.
	peAddrs map[int]map[bus.Addr]bool
}

// NewAccumulator creates an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{
		s:       Stats{ByClass: make(map[coherence.Class]int)},
		addrs:   map[bus.Addr]bool{},
		perPE:   map[int]*PEStats{},
		peAddrs: map[int]map[bus.Addr]bool{},
	}
}

// Add folds one record in.
func (a *Accumulator) Add(r Record) {
	a.s.Records++
	pe := a.perPE[r.PE]
	if pe == nil {
		pe = &PEStats{PE: r.PE}
		a.perPE[r.PE] = pe
		a.peAddrs[r.PE] = map[bus.Addr]bool{}
	}
	pe.Records++
	touch := func() {
		a.addrs[r.Op.Addr] = true
		a.peAddrs[r.PE][r.Op.Addr] = true
		a.s.ByClass[r.Op.Class]++
	}
	switch r.Op.Kind {
	case workload.OpRead:
		a.s.Reads++
		pe.Reads++
		touch()
	case workload.OpWrite:
		a.s.Writes++
		pe.Writes++
		touch()
	case workload.OpTestSet:
		a.s.TestSets++
		pe.TestSets++
		touch()
	case workload.OpCompute:
		a.s.Computes++
		pe.Computes++
	case workload.OpHalt:
		a.s.Halts++
		pe.Halts++
	}
}

// Stats returns the machine-wide summary so far.
func (a *Accumulator) Stats() Stats {
	s := a.s
	s.PEs = len(a.perPE)
	s.Addresses = len(a.addrs)
	return s
}

// PerPE returns the per-PE summaries in ascending PE order.
func (a *Accumulator) PerPE() []PEStats {
	out := make([]PEStats, 0, len(a.perPE))
	for pe, st := range a.perPE {
		st := *st
		st.Addresses = len(a.peAddrs[pe])
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PE < out[j].PE })
	return out
}

// Summarize computes Stats over records.
func Summarize(recs []Record) Stats {
	a := NewAccumulator()
	for _, r := range recs {
		a.Add(r)
	}
	return a.Stats()
}

// Capture runs an agent standalone for at most n operations, recording
// the stream (results are fed back as zero; only non-reactive agents
// produce meaningful captures, which is what trace generation tools use).
func Capture(pe int, agent workload.Agent, n int) []Record {
	var out []Record
	for i := 0; i < n; i++ {
		op := agent.Next(workload.Result{})
		out = append(out, Record{PE: pe, Op: op})
		if op.Kind == workload.OpHalt {
			break
		}
	}
	return out
}
