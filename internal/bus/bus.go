// Package bus models the logically-single shared bus of the paper's
// machine: n processing elements and I/O connected to memory over one
// broadcast medium (paper Section 2, assumptions 1-6).
//
// The bus is the serialization point of the whole machine. One transaction
// executes per bus cycle; every cache "listens" (snoops) on every
// transaction; a cache holding the line in the Local state can interrupt a
// bus read, replace it with a bus write of its own data, and force the read
// to be retried on the next cycle (assumption 6 and Section 3, case ii.b).
//
// Arbitration is request-line based, as on a real bus: a device asserts its
// request line (RequestSlot), the arbiter grants one device per cycle
// (round-robin, with an interrupted read's retry taking absolute priority),
// and the granted device supplies its transaction at grant time
// (Requester.BusGrant). Building the transaction at grant time — rather
// than queueing payloads — matters for correctness: a cache's state can
// change between requesting the bus and winning it (a snooped write can
// invalidate the line it meant to write back), and the transaction must
// reflect the state at the moment the bus is actually driven.
//
// The package also provides Set, a group of buses interleaved on the low
// address bits, implementing the multiple-shared-bus configuration of
// Section 7 / Figure 7-1.
package bus

import (
	"fmt"
	"math/bits"
)

// Addr is a word address. The paper assumes a one-word block size
// (assumption 7), so there is no separate block/line address.
type Addr uint32

// Word is the machine word: the unit of all data transfer.
type Word uint32

// Op enumerates bus transaction kinds.
type Op uint8

const (
	// OpRead is a bus read: fetch a word from memory (or from an
	// interrupting Local owner). Its returned data is broadcast: snooping
	// caches may pick it up (the "RB" in the RB scheme).
	OpRead Op = iota
	// OpWrite is a bus write: update memory and broadcast the new value.
	// Under RB snoopers only note the event; under RWB they also read the
	// data part.
	OpWrite
	// OpInv is the RWB scheme's bus invalidate signal. It carries no data
	// (the paper reserves one data value to encode it; we model it as a
	// distinct op, which is equivalent and clearer).
	OpInv
	// OpRMW is an atomic read-modify-write, the bus realization of
	// Test-and-Set: a locked read followed, if the test succeeds, by a
	// write in the same transaction (Section 6).
	OpRMW
	numOps
)

// String returns the conventional short name used in the paper's figures.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "BR"
	case OpWrite:
		return "BW"
	case OpInv:
		return "BI"
	case OpRMW:
		return "RMW"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Request is a bus transaction supplied by a granted requester. The
// arbiter stamps Source while granting, which happens only in the bus
// phase.
type Request struct {
	//phase:bus
	Source int  // requesting cache index
	Op     Op   // transaction kind
	Addr   Addr // word address
	Data   Word // for OpWrite: value written; for OpRMW: value to set on success
	// SuccessOp selects how a successful OpRMW's write part is broadcast:
	// OpWrite (the common case) or OpInv (RWB taking a line Local on a
	// completed write streak). The zero value is treated as OpWrite.
	SuccessOp Op
	// Retry marks the re-issue of a read that was killed by a Local owner
	// (informational; priority is carried by PrioritySlot).
	Retry bool
	// Lock marks an OpRead as the paper's "read with lock": on completion
	// the bus locks the word — writes and locked operations to it by
	// other sources stall — until the holder's Unlock write. (Section 6:
	// "a special bus read operation is generated that locks the
	// appropriate shared memory location".)
	Lock bool
	// Unlock marks an OpWrite (or OpInv) as the holder's "store back ...
	// and the lock removed" operation.
	Unlock bool
}

// Result reports the outcome of an executed transaction to its issuer.
type Result struct {
	// Killed is set when a bus read was interrupted by a Local owner. The
	// read consumed its cycle (the owner's flush write used the slot) and
	// the issuer must retry via PrioritySlot.
	Killed bool
	// Data is the word obtained by OpRead, or the word observed by the
	// locked read of OpRMW.
	Data Word
	// RMWSuccess reports whether the OpRMW test (Data == 0) succeeded and
	// the write part was performed. Set by the bus-phase executor.
	//phase:bus
	RMWSuccess bool
	// SharedLine reports, for OpRead, whether any other cache held a
	// valid copy at the time of the read — the wired-OR "shared" line
	// that lets Illinois-style protocols install clean-exclusive copies.
	// Only snoopers implementing CopyHolder contribute.
	SharedLine bool
}

// CopyHolder is an optional Snooper extension: caches that implement it
// drive the bus's shared line during reads.
type CopyHolder interface {
	// HasCopy reports whether the cache holds a valid (non-Invalid) copy
	// of the address.
	//phase:bus
	HasCopy(a Addr) bool
}

// Snooper is a device (a private cache) listening on the bus. The bus
// never calls a snooper for transactions it sourced itself.
type Snooper interface {
	// SnoopRead is offered every bus read before memory responds. A cache
	// holding the line in the Local state must return inhibit=true and the
	// cached value; the bus then kills the read, writes the value through
	// to memory, broadcasts that write, and the issuer retries.
	//phase:bus
	SnoopRead(addr Addr, source int) (inhibit bool, data Word)

	// SnoopRMWRead is offered the locked read of an OpRMW. Unlike a plain
	// read this is non-cachable (Section 6: a failed Test-and-Set is "a
	// non-cachable read"), so a clean Local owner need not give up its
	// state; only a *dirty* Local owner must flush so the locked read
	// observes the latest value.
	//phase:bus
	SnoopRMWRead(addr Addr, source int) (flush bool, data Word)

	// ObserveWrite is invoked for every OpWrite and OpInv transaction by
	// other devices, including the flush writes generated by read
	// interrupts.
	//phase:bus
	ObserveWrite(op Op, addr Addr, data Word, source int)

	// ObserveReadData is invoked with the data returned by a successfully
	// completed bus read: the broadcast that lets Invalid copies turn
	// Readable (the heart of the RB scheme).
	//phase:bus
	ObserveReadData(addr Addr, data Word, source int)
}

// Requester is a device that can be granted the bus. BusGrant is called
// when the arbiter selects the device; the device returns the transaction
// it needs *now*, built from its current state, restricted to addresses
// this bus serves (bank/banks interleaving, Figure 7-1; a single bus is
// bank 0 of 1). Returning ok=false withdraws the request — the device no
// longer needs the bus (for this bank), and the arbiter moves on within
// the same cycle.
type Requester interface {
	//phase:bus
	BusGrant(bank, banks int) (req Request, ok bool)
}

// Verdict is an Injector's ruling on one granted transaction.
type Verdict uint8

const (
	// VerdictPass executes the transaction normally.
	VerdictPass Verdict = iota
	// VerdictDrop consumes the bus cycle but executes nothing: memory and
	// the snoopers never see the transaction and the issuer receives no
	// completion. A dropped transaction models a lost bus cycle; the
	// issuer either re-derives and re-requests it (snooped traffic
	// advances its state) or wedges until the watchdog names it.
	VerdictDrop
	// VerdictDup executes the transaction twice back to back in the same
	// grant; the issuer receives the first execution's result. Unlocking
	// transactions are exempt (the second release would trip the lock
	// sanity panic) and execute once.
	VerdictDup
	// VerdictMute executes the transaction with snooping suppressed: no
	// shared-line sample, no Local-owner interrupt, no broadcast to the
	// other caches. The transaction's effects reach memory only.
	VerdictMute
)

// Injector is the bus's fault-injection port (internal/fault drives it).
// A nil injector — the default — costs one pointer test per cycle and
// per grant, keeping the fault-free hot loop allocation-free and
// bit-identical to an unhooked bus.
type Injector interface {
	// WedgeArbitration is consulted once per non-held cycle before the
	// grant loop; returning true freezes the arbiter for this cycle (no
	// source is granted, request lines stay asserted).
	WedgeArbitration(cycle uint64) bool
	// OnGrant is consulted once per granted transaction, after
	// arbitration and the lock/ready checks, before execution. The
	// request is passed by value: handing the callee a pointer would
	// force every granted request onto the heap (escape analysis cannot
	// see through an interface call), breaking the 0 allocs/cycle
	// guarantee of the fault-free loop.
	OnGrant(cycle uint64, r Request) Verdict
}

// Memory is the bus's view of the shared main memory. Memory is reached
// only through executed transactions, so both ports are bus-phase calls.
type Memory interface {
	//phase:bus
	ReadWord(a Addr) Word
	//phase:bus
	WriteWord(a Addr, w Word)
}

// StallableMemory is an optional Memory extension for memory ports that
// may be unable to service an access this cycle — the cluster adapter of
// the hierarchical configuration, whose misses must first complete a
// transaction on the next bus level. A transaction whose port is not
// Ready is not executed (no snoop effects, no state change anywhere); the
// requester's slot stays asserted and the arbiter tries other requesters
// this cycle.
type StallableMemory interface {
	Memory
	// Ready reports whether the given transaction can complete now. A
	// not-ready answer is the port's cue to start whatever upper-level
	// work the transaction needs.
	//phase:bus
	Ready(r Request) bool
}

// RMWMemory is an optional Memory extension for ports that perform the
// atomic read-modify-write themselves (a cluster adapter delegates it to
// the global bus so the atomicity is machine-wide, not cluster-wide).
// When implemented, the bus uses RMW instead of its ReadWord/WriteWord
// sequence for OpRMW transactions; Ready (if also implemented) has
// already confirmed the result is available.
type RMWMemory interface {
	Memory
	// RMW returns the old word; if it was 0, the set has already been
	// performed upstream.
	//phase:bus
	RMW(a Addr, set Word) (old Word)
}

// Stats counts bus activity.
type Stats struct {
	Grants      uint64         // grant attempts that produced a transaction
	Withdrawn   uint64         // grant attempts the requester declined
	ByOp        [numOps]uint64 // completed transactions by op
	Stalled     uint64         // grants refused by a not-ready memory port
	KilledReads uint64         // reads interrupted by a Local owner
	FlushWrites uint64         // writes generated by read interrupts
	RMWFlushes  uint64         // dirty-owner flushes forced by locked reads
	RMWSuccess  uint64         // RMW transactions whose test succeeded
	RMWFailure  uint64         // RMW transactions whose test failed
	Retries     uint64         // retried reads granted
	BusyCycles  uint64         // cycles the bus carried a transaction
	IdleCycles  uint64         // cycles with no transaction
	WaitCycles  uint64         // requester-cycles spent with a slot pending

	// Fault-injection counters (always zero without an Injector).
	FaultDrops  uint64 // granted transactions suppressed by VerdictDrop
	FaultDups   uint64 // granted transactions doubled by VerdictDup
	FaultMutes  uint64 // granted transactions executed snoop-silent
	FaultWedges uint64 // cycles the arbiter was frozen by the injector
}

// Transactions returns the total number of completed transactions.
func (s Stats) Transactions() uint64 {
	var t uint64
	for _, c := range s.ByOp {
		t += c
	}
	return t
}

// Reads returns completed bus reads (including the retried ones).
func (s Stats) Reads() uint64 { return s.ByOp[OpRead] }

// Writes returns completed bus writes (including flush writes).
func (s Stats) Writes() uint64 { return s.ByOp[OpWrite] }

// Invalidates returns completed bus invalidate signals.
func (s Stats) Invalidates() uint64 { return s.ByOp[OpInv] }

// RMWs returns completed read-modify-write transactions.
func (s Stats) RMWs() uint64 { return s.ByOp[OpRMW] }

// Utilization returns the fraction of elapsed cycles the bus was busy.
func (s Stats) Utilization() float64 {
	total := s.BusyCycles + s.IdleCycles
	if total == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(total)
}

// Add accumulates other into s (used to aggregate a Set's buses).
func (s *Stats) Add(other *Stats) {
	s.Grants += other.Grants
	s.Withdrawn += other.Withdrawn
	s.Stalled += other.Stalled
	for i := range s.ByOp {
		s.ByOp[i] += other.ByOp[i]
	}
	s.KilledReads += other.KilledReads
	s.FlushWrites += other.FlushWrites
	s.RMWFlushes += other.RMWFlushes
	s.RMWSuccess += other.RMWSuccess
	s.RMWFailure += other.RMWFailure
	s.Retries += other.Retries
	s.BusyCycles += other.BusyCycles
	s.IdleCycles += other.IdleCycles
	s.WaitCycles += other.WaitCycles
	s.FaultDrops += other.FaultDrops
	s.FaultDups += other.FaultDups
	s.FaultMutes += other.FaultMutes
	s.FaultWedges += other.FaultWedges
}

// Bus is a single shared bus with a round-robin arbiter, driven one cycle
// at a time via Tick.
type Bus struct {
	mem Memory
	// stallMem and rmwMem cache the optional-extension views of mem,
	// resolved once at construction instead of per transaction.
	stallMem StallableMemory
	rmwMem   RMWMemory

	snoopers []Snooper
	snoopIDs []int
	// holders caches each snooper's CopyHolder view (nil when the
	// snooper does not drive the shared line), resolved at Attach so the
	// per-read snoop dispatch is pure index loads.
	holders []CopyHolder
	// reqs is the requester registry, indexed by source id (nil entries
	// are unattached sources). Ids are the small dense PE/cluster
	// indices, so a slice replaces the historical map: grant dispatch is
	// an index load, and registration order cannot influence anything.
	reqs []Requester

	// pres, when non-nil, is the exact holder table (see Presence): snoop
	// dispatch iterates only the caches recorded as holding a frame for
	// the transaction's address, instead of offering the (no-op) snoop to
	// every attached cache. idxByID maps a source id to its index in
	// snoopers; targets is the per-transaction dispatch scratch.
	pres    *Presence
	idxByID []int
	//phase:bus
	targets []int

	// The request lines are asserted/deasserted by the request-line
	// (snoop) phase and consumed by the arbiter in the bus phase, so the
	// slot state is co-owned by both.
	//phase:bus,snoop
	slots []int // sources with their request line asserted
	//phase:bus,snoop
	slotted []bool // membership view of slots, indexed by source id
	//phase:bus
	stalled []int // per-Tick scratch: sources whose grant stalled this cycle
	//phase:bus,snoop
	priority int // source owed an immediate retry; -1 when none
	//phase:bus
	lastWin int // last granted source, for round-robin rotation

	// Bank and Banks identify this bus's address interleave (Figure 7-1).
	// A standalone bus serves every address: bank 0 of 1.
	Bank, Banks int

	// MemLatency is the number of extra cycles (beyond the transaction's
	// own cycle) a memory-served transaction holds the bus. Zero matches
	// the paper's assumption that the bus cycle accommodates the access.
	MemLatency int
	//phase:bus
	busyUntil uint64 // absolute cycle until which the bus is occupied
	//phase:bus
	cycle uint64

	// Word lock for two-phase read-modify-write: the paper notes "it is
	// generally considered too expensive to associate a lock with each
	// memory address", so one lock register serves the whole memory (a
	// second locker stalls until release).
	//phase:bus
	lockHolder int // source holding the lock; -1 when free
	//phase:bus
	lockAddr Addr

	//phase:bus
	stats Stats

	// inj is the optional fault injector; nil (the default) keeps every
	// hook a single pointer test. muteSnoops is set for the duration of a
	// VerdictMute execution: gatherTargets then dispatches to nobody.
	inj Injector
	//phase:bus
	muteSnoops bool

	// Trace, when non-nil, receives every completed transaction; the
	// figure-reproduction experiments use it to print bus activity.
	Trace func(cycle uint64, r Request, res Result)
}

// New creates a bus over the given memory.
func New(mem Memory) *Bus {
	if mem == nil {
		panic("bus: nil memory")
	}
	b := &Bus{mem: mem, priority: -1, lastWin: -1, Banks: 1, lockHolder: -1}
	b.stallMem, _ = mem.(StallableMemory)
	b.rmwMem, _ = mem.(RMWMemory)
	return b
}

// SetInjector installs (or, with nil, removes) the fault injector.
func (b *Bus) SetInjector(inj Injector) { b.inj = inj }

// Reset returns the bus to its freshly constructed state — no asserted
// request lines, free lock register, zero counters, no injector or trace
// hook — while keeping every attachment (snoopers, requesters, presence
// table, interleave identity, memory latency). The registries were
// resolved at Attach time and are part of the machine's shape, not its
// run state, so a recycled bus re-runs a workload exactly as a new one.
func (b *Bus) Reset() {
	b.slots = b.slots[:0]
	for i := range b.slotted {
		b.slotted[i] = false
	}
	b.stalled = b.stalled[:0]
	b.targets = b.targets[:0]
	b.priority = -1
	b.lastWin = -1
	b.busyUntil = 0
	b.cycle = 0
	b.lockHolder = -1
	b.lockAddr = 0
	b.stats = Stats{}
	b.inj = nil
	b.muteSnoops = false
	b.Trace = nil
}

// Locked reports the current lock register (holder -1 when free).
func (b *Bus) Locked() (holder int, addr Addr) { return b.lockHolder, b.lockAddr }

// blockedByLock reports whether the lock register forces r to wait:
// while a word is locked, other sources may read it but not write it,
// RMW it, or take a new lock.
//
//hotpath:allocfree
func (b *Bus) blockedByLock(r *Request) bool {
	if b.lockHolder == -1 || r.Source == b.lockHolder {
		return false
	}
	switch {
	case r.Lock:
		return true // one lock register: any second locker waits
	case r.Addr != b.lockAddr:
		return false
	case r.Op == OpWrite:
		return true // "Any bus writes before the unlock will fail"
	case r.Op == OpRMW:
		return true
	case r.Op == OpRead:
		// The location itself is locked: even plain reads wait, so no
		// cache can gain a (clean-exclusive) copy mid-RMW.
		return true
	}
	return false
}

// Attach registers a snooper under the given source id. Transactions with
// Source == id are not offered to that snooper.
func (b *Bus) Attach(id int, s Snooper) {
	if s == nil {
		panic("bus: nil snooper")
	}
	for _, existing := range b.snoopIDs {
		if existing == id {
			panic(fmt.Sprintf("bus: duplicate snooper id %d", id))
		}
	}
	if b.pres != nil && (id < 0 || id >= MaxPresenceIDs) {
		panic(fmt.Sprintf("bus: snooper id %d out of presence-table range", id))
	}
	b.snoopers = append(b.snoopers, s)
	b.snoopIDs = append(b.snoopIDs, id)
	ch, _ := s.(CopyHolder)
	b.holders = append(b.holders, ch)
	if id >= 0 {
		for len(b.idxByID) <= id {
			b.idxByID = append(b.idxByID, -1)
		}
		b.idxByID[id] = len(b.snoopers) - 1
	}
}

// SetPresence installs the holder table the bus consults to dispatch
// snoops only to actual frame holders. The caches must share the same
// table (and keep it exact); every snooper id must be below
// MaxPresenceIDs. Passing nil restores the full broadcast.
func (b *Bus) SetPresence(p *Presence) {
	if p != nil {
		for _, id := range b.snoopIDs {
			if id < 0 || id >= MaxPresenceIDs {
				panic(fmt.Sprintf("bus: snooper id %d out of presence-table range", id))
			}
		}
	}
	b.pres = p
}

// gatherTargets fills the dispatch scratch with the indices (into
// b.snoopers) of the snoopers to offer a transaction on addr from source.
// With a presence table that is the recorded holders in ascending id
// order; without one it is every other snooper in attach order. The two
// orders produce identical simulations — the skipped caches' callbacks
// are no-ops, and no snoop outcome depends on visit order (at most one
// owner can inhibit or flush).
//
//hotpath:allocfree
func (b *Bus) gatherTargets(addr Addr, source int) []int {
	t := b.targets[:0]
	if b.muteSnoops {
		// VerdictMute: the transaction executes with snooping suppressed —
		// no shared-line sample, no owner interrupt, no broadcasts.
		b.targets = t
		return t
	}
	if b.pres != nil {
		for m := b.pres.Mask(addr) &^ (1 << uint(source)); m != 0; {
			id := bits.TrailingZeros64(m)
			m &^= 1 << uint(id)
			if id < len(b.idxByID) {
				if i := b.idxByID[id]; i >= 0 {
					t = append(t, i)
				}
			}
		}
	} else {
		for i, id := range b.snoopIDs {
			if id != source {
				t = append(t, i)
			}
		}
	}
	b.targets = t
	return t
}

// AttachRequester registers the device that answers grants for source id.
func (b *Bus) AttachRequester(id int, r Requester) {
	if r == nil {
		panic("bus: nil requester")
	}
	if id < 0 {
		panic(fmt.Sprintf("bus: negative requester id %d", id))
	}
	if id >= len(b.reqs) {
		grown := make([]Requester, id+1)
		copy(grown, b.reqs)
		b.reqs = grown
		flags := make([]bool, id+1)
		copy(flags, b.slotted)
		b.slotted = flags
	}
	if b.reqs[id] != nil {
		panic(fmt.Sprintf("bus: duplicate requester id %d", id))
	}
	b.reqs[id] = r
}

// requester returns the registered requester for id, or nil.
func (b *Bus) requester(id int) Requester {
	if id < 0 || id >= len(b.reqs) {
		return nil
	}
	return b.reqs[id]
}

// RequestSlot asserts source id's bus-request line. Asserting an already
// asserted line is a no-op — the slotted bitmap makes the (very common)
// re-assertion of a still-blocked source O(1) rather than a scan of every
// asserted line. Called from the request-line phase and by the bus itself
// when it re-asserts a stalled source's line.
//
//phase:bus,snoop
//hotpath:allocfree
func (b *Bus) RequestSlot(id int) {
	if id >= 0 && id < len(b.slotted) && b.slotted[id] {
		return
	}
	if b.requester(id) == nil {
		panic(fmt.Sprintf("bus: slot requested for unattached source %d", id))
	}
	b.slotted[id] = true
	b.slots = append(b.slots, id)
}

// CancelSlot deasserts source id's request line (and its priority claim).
// Called from the request-line phase and by the arbiter's priority grant.
//
//phase:bus,snoop
//hotpath:allocfree
func (b *Bus) CancelSlot(id int) {
	if id >= 0 && id < len(b.slotted) && b.slotted[id] {
		b.slotted[id] = false
		for i, s := range b.slots {
			if s == id {
				b.slots = append(b.slots[:i], b.slots[i+1:]...)
				break
			}
		}
	}
	if b.priority == id {
		b.priority = -1
	}
}

// PrioritySlot asserts source id's request line with absolute priority:
// the next grant goes to it ("The original bus read will be retried
// immediately", Section 3). Only one source may hold priority; a second
// claim panics, as at most one read can have been killed per cycle.
//
//phase:bus
//hotpath:allocfree
func (b *Bus) PrioritySlot(id int) {
	if b.priority != -1 && b.priority != id {
		panic(fmt.Sprintf("bus: priority slot already held by %d", b.priority))
	}
	if b.requester(id) == nil {
		panic(fmt.Sprintf("bus: priority slot for unattached source %d", id))
	}
	b.priority = id
}

// Slotted reports whether source id currently has a request line asserted.
func (b *Bus) Slotted(id int) bool {
	if b.priority == id {
		return true
	}
	return id >= 0 && id < len(b.slotted) && b.slotted[id]
}

// PendingLen returns the number of asserted request lines.
func (b *Bus) PendingLen() int {
	n := len(b.slots)
	if b.priority != -1 {
		n++
	}
	return n
}

// Stats returns a snapshot of the accumulated statistics.
func (b *Bus) Stats() Stats { return b.stats }

// Cycle returns the number of Tick calls so far.
func (b *Bus) Cycle() uint64 { return b.cycle }

// Tick advances the bus one cycle: the arbiter grants at most one source
// (priority first, then round-robin by id) and executes the transaction it
// supplies. granted is false on an idle or busy-hold cycle.
//
//phase:bus
//hotpath:allocfree
func (b *Bus) Tick() (req Request, res Result, granted bool) {
	b.cycle++
	if b.cycle <= b.busyUntil {
		// Bus held by a multi-cycle (memory latency) transaction.
		b.stats.BusyCycles++
		b.stats.WaitCycles += uint64(b.PendingLen())
		return Request{}, Result{}, false
	}
	b.stats.WaitCycles += uint64(b.PendingLen())
	if b.inj != nil && b.inj.WedgeArbitration(b.cycle) {
		// Arbiter frozen: no grant, request lines stay asserted.
		b.stats.FaultWedges++
		b.stats.IdleCycles++
		return Request{}, Result{}, false
	}
	req, res, granted = b.arbitrate()
	// Stalled sources keep their request lines asserted. The scratch
	// slice is bus-owned and reused so a stall-heavy cycle allocates
	// nothing in steady state.
	for _, s := range b.stalled {
		b.RequestSlot(s)
	}
	b.stalled = b.stalled[:0]
	return req, res, granted
}

// arbitrate runs the grant loop of one non-held cycle: pick a source,
// let it supply (or withdraw) its transaction, and execute the first one
// that is not blocked by the lock register or a not-ready memory port.
// Blocked sources are parked on b.stalled; Tick re-asserts their lines.
//
//hotpath:allocfree
func (b *Bus) arbitrate() (Request, Result, bool) {
	for {
		source, ok := b.pick()
		if !ok {
			b.stats.IdleCycles++
			return Request{}, Result{}, false
		}
		r, want := b.reqs[source].BusGrant(b.Bank, b.Banks)
		if !want {
			b.stats.Withdrawn++
			continue
		}
		if b.Banks > 1 && int(r.Addr)&(b.Banks-1) != b.Bank {
			panic(fmt.Sprintf("bus: source %d supplied addr %d outside bank %d/%d",
				source, r.Addr, b.Bank, b.Banks))
		}
		r.Source = source
		if b.blockedByLock(&r) {
			// The word (or the lock register) is held; wait for the
			// unlock, trying other requesters this cycle.
			b.stats.Stalled++
			b.stalled = append(b.stalled, source)
			continue
		}
		if b.stallMem != nil && r.Op != OpInv && !b.stallMem.Ready(r) {
			// The memory port cannot service this transaction yet (it is
			// now fetching upstream); nothing executed, try another
			// requester this cycle.
			b.stats.Stalled++
			b.stalled = append(b.stalled, source)
			continue
		}
		verdict := VerdictPass
		if b.inj != nil {
			verdict = b.inj.OnGrant(b.cycle, r)
		}
		if verdict == VerdictDrop {
			// The transaction vanishes mid-flight: the cycle is consumed
			// but neither memory nor any snooper (nor the issuer) sees it.
			b.stats.FaultDrops++
			b.stats.BusyCycles++
			return Request{}, Result{}, false
		}
		b.stats.Grants++
		b.stats.BusyCycles++
		if r.Retry {
			b.stats.Retries++
		}
		var result Result
		switch verdict {
		case VerdictDup:
			b.stats.FaultDups++
			result = b.execute(&r)
			if !r.Unlock {
				b.execute(&r)
			}
		case VerdictMute:
			b.stats.FaultMutes++
			b.muteSnoops = true
			result = b.execute(&r)
			b.muteSnoops = false
		default:
			result = b.execute(&r)
		}
		if b.Trace != nil {
			b.Trace(b.cycle, r, result)
		}
		return r, result, true
	}
}

// pick removes and returns the next source to grant.
//
//hotpath:allocfree
func (b *Bus) pick() (int, bool) {
	if b.priority != -1 {
		s := b.priority
		b.priority = -1
		// A priority source may also hold an ordinary slot; clear it.
		b.CancelSlot(s)
		b.lastWin = s
		return s, true
	}
	if len(b.slots) == 0 {
		return 0, false
	}
	// Round-robin: grant the source that follows lastWin most closely in
	// increasing (wrapping) id order.
	best := -1
	bestKey := int(^uint(0) >> 1)
	for i, s := range b.slots {
		key := s - b.lastWin
		if key <= 0 {
			key += 1 << 30
		}
		if key < bestKey {
			bestKey = key
			best = i
		}
	}
	s := b.slots[best]
	b.slots = append(b.slots[:best], b.slots[best+1:]...)
	b.slotted[s] = false
	b.lastWin = s
	return s, true
}

// execute performs one transaction against memory and the snoopers.
//
//hotpath:allocfree
func (b *Bus) execute(r *Request) Result {
	switch r.Op {
	case OpRead:
		res := b.executeRead(r)
		if r.Lock && !res.Killed {
			// The completed locked read takes the lock register.
			b.lockHolder, b.lockAddr = r.Source, r.Addr
		}
		return res
	case OpWrite:
		b.mem.WriteWord(r.Addr, r.Data)
		b.broadcastWrite(OpWrite, r.Addr, r.Data, r.Source)
		b.stats.ByOp[OpWrite]++
		b.release(r)
		b.hold()
		return Result{Data: r.Data}
	case OpInv:
		b.broadcastWrite(OpInv, r.Addr, 0, r.Source)
		b.stats.ByOp[OpInv]++
		b.release(r)
		// An invalidate is a pure signal; it does not touch memory and
		// needs no memory hold.
		return Result{}
	case OpRMW:
		return b.executeRMW(r)
	}
	panic(fmt.Sprintf("bus: unknown op %d", r.Op))
}

// release clears the lock register for an Unlock transaction.
//
//hotpath:allocfree
func (b *Bus) release(r *Request) {
	if !r.Unlock {
		return
	}
	if b.lockHolder != r.Source {
		panic(fmt.Sprintf("bus: source %d unlocking a lock held by %d", r.Source, b.lockHolder))
	}
	b.lockHolder = -1
}

//hotpath:allocfree
func (b *Bus) executeRead(r *Request) Result {
	// No frame set changes while the transaction executes (installs happen
	// in the requester's BusCompleted, after the Tick), so one target list
	// serves all three snoop phases.
	targets := b.gatherTargets(r.Addr, r.Source)
	// Shared-line sample: taken before any snoop reaction so it reflects
	// the pre-transaction configuration.
	shared := false
	for _, i := range targets {
		if ch := b.holders[i]; ch != nil && ch.HasCopy(r.Addr) {
			shared = true
			break
		}
	}
	// Snoop phase: a Local owner interrupts the read.
	for _, i := range targets {
		if inhibit, data := b.snoopers[i].SnoopRead(r.Addr, r.Source); inhibit {
			// The read is killed; its slot carries the owner's bus write,
			// which updates memory and is observed by everyone else
			// (including, harmlessly, the original requester's cache).
			b.mem.WriteWord(r.Addr, data)
			b.stats.KilledReads++
			b.stats.FlushWrites++
			b.stats.ByOp[OpWrite]++
			b.broadcastWrite(OpWrite, r.Addr, data, b.snoopIDs[i])
			b.hold()
			return Result{Killed: true, Data: data}
		}
	}
	// Memory responds; the returned value is broadcast to all snoopers
	// (they, not the bus, decide whether to take it).
	data := b.mem.ReadWord(r.Addr)
	b.stats.ByOp[OpRead]++
	for _, i := range targets {
		b.snoopers[i].ObserveReadData(r.Addr, data, r.Source)
	}
	b.hold()
	return Result{Data: data, SharedLine: shared}
}

//hotpath:allocfree
func (b *Bus) executeRMW(r *Request) Result {
	// Locked read: non-cachable, so only a dirty Local owner flushes, and
	// no read data is broadcast (Figures 6-1/6-2: spinning Test-and-Sets
	// leave all cache states unchanged).
	for _, i := range b.gatherTargets(r.Addr, r.Source) {
		if flush, data := b.snoopers[i].SnoopRMWRead(r.Addr, r.Source); flush {
			b.mem.WriteWord(r.Addr, data)
			b.stats.RMWFlushes++
			break // the lemma guarantees at most one Local owner
		}
	}
	var old Word
	if b.rmwMem != nil {
		// The port performs (or has performed) the atomic cycle itself.
		old = b.rmwMem.RMW(r.Addr, r.Data)
	} else {
		old = b.mem.ReadWord(r.Addr)
		if old == 0 {
			b.mem.WriteWord(r.Addr, r.Data)
		}
	}
	res := Result{Data: old}
	if old == 0 {
		// Test succeeded: the write part executed within the locked
		// transaction; the other caches see a bus write (or, for an RWB
		// Local claim, a bus invalidate).
		bc := OpWrite
		if r.SuccessOp == OpInv {
			bc = OpInv
		}
		b.broadcastWrite(bc, r.Addr, r.Data, r.Source)
		res.RMWSuccess = true
		b.stats.RMWSuccess++
	} else {
		b.stats.RMWFailure++
	}
	b.stats.ByOp[OpRMW]++
	b.hold()
	return res
}

//hotpath:allocfree
func (b *Bus) broadcastWrite(op Op, addr Addr, data Word, source int) {
	for _, i := range b.gatherTargets(addr, source) {
		b.snoopers[i].ObserveWrite(op, addr, data, source)
	}
}

// hold occupies the bus for MemLatency additional cycles.
//
//hotpath:allocfree
func (b *Bus) hold() {
	if b.MemLatency > 0 {
		b.busyUntil = b.cycle + uint64(b.MemLatency)
	}
}
