package bus

import "fmt"

// Set is a group of shared buses interleaved on the least significant
// address bits, the multiple-shared-bus configuration of Section 7 /
// Figure 7-1: "The private caches and the shared memory are divided into
// two memory banks using the least significant address bit. Each part of
// the divided cache will generate, on average, half of the traffic."
//
// The number of buses must be a power of two so the bank of an address is
// addr & (n-1).
type Set struct {
	buses []*Bus
	mask  Addr
	//phase:bus
	grants []Grant // reused per-Tick scratch; contents valid until the next Tick
}

// NewSet creates n interleaved buses over the same memory. n must be a
// power of two and at least 1.
func NewSet(mem Memory, n int) *Set {
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("bus: set size %d is not a positive power of two", n))
	}
	s := &Set{mask: Addr(n - 1)}
	for i := 0; i < n; i++ {
		b := New(mem)
		b.Bank = i
		b.Banks = n
		s.buses = append(s.buses, b)
	}
	return s
}

// Len returns the number of buses in the set.
func (s *Set) Len() int { return len(s.buses) }

// BankOf returns the bus index serving the given address.
func (s *Set) BankOf(a Addr) int { return int(a & s.mask) }

// Bus returns the i'th bus (for per-bank statistics and configuration).
func (s *Set) Bus(i int) *Bus { return s.buses[i] }

// Attach registers the snooper on every bus: a private cache is "divided"
// across all banks, so it must snoop all of them.
func (s *Set) Attach(id int, sn Snooper) {
	for _, b := range s.buses {
		b.Attach(id, sn)
	}
}

// AttachRequester registers the requester on every bus.
func (s *Set) AttachRequester(id int, r Requester) {
	for _, b := range s.buses {
		b.AttachRequester(id, r)
	}
}

// RequestSlot asserts id's request line on the bus serving addr; the
// machine's request-line phase drives it.
//
//phase:snoop
//hotpath:allocfree
func (s *Set) RequestSlot(addr Addr, id int) {
	s.buses[s.BankOf(addr)].RequestSlot(id)
}

// PrioritySlot asserts id's priority retry line on the bus serving addr;
// the machine asserts it while completing a killed read in the bus phase.
//
//phase:bus
//hotpath:allocfree
func (s *Set) PrioritySlot(addr Addr, id int) {
	s.buses[s.BankOf(addr)].PrioritySlot(id)
}

// CancelSlot deasserts id's request line on every bus; the machine's
// request-line phase drives it.
//
//phase:snoop
//hotpath:allocfree
func (s *Set) CancelSlot(id int) {
	for _, b := range s.buses {
		b.CancelSlot(id)
	}
}

// SetPresence installs one shared holder table on every bus: all banks
// see the same caches, so one table serves the whole set.
func (s *Set) SetPresence(p *Presence) {
	for _, b := range s.buses {
		b.SetPresence(p)
	}
}

// SetInjector installs one fault injector on every bus (nil removes it).
// The injector sees each bank's own cycle counter; banks tick in lockstep,
// so the counters agree.
func (s *Set) SetInjector(inj Injector) {
	for _, b := range s.buses {
		b.SetInjector(inj)
	}
}

// Reset returns every bus in the set to its freshly constructed state
// (see Bus.Reset) and drops the per-Tick grant scratch. Attachments and
// the interleave identity survive; run state does not.
func (s *Set) Reset() {
	for _, b := range s.buses {
		b.Reset()
	}
	s.grants = s.grants[:0]
}

// SetMemLatency configures the memory hold time on every bus.
func (s *Set) SetMemLatency(cycles int) {
	for _, b := range s.buses {
		b.MemLatency = cycles
	}
}

// Grant is one completed transaction from a Tick of the set.
type Grant struct {
	BusIndex int
	Req      Request
	Res      Result
}

// Tick advances every bus one cycle and returns the transactions granted
// this cycle, in bank order. With n buses up to n transactions complete
// per cycle — the bandwidth multiplication of Figure 7-1. The returned
// slice is set-owned scratch, overwritten by the next Tick; callers
// consume it immediately (as the machine's bus phase does) rather than
// retaining it.
//
//phase:bus
//hotpath:allocfree
func (s *Set) Tick() []Grant {
	grants := s.grants[:0]
	for i, b := range s.buses {
		if req, res, ok := b.Tick(); ok {
			grants = append(grants, Grant{BusIndex: i, Req: req, Res: res})
		}
	}
	s.grants = grants
	return grants
}

// Stats returns aggregated statistics across all buses.
func (s *Set) Stats() Stats {
	var total Stats
	for _, b := range s.buses {
		st := b.Stats()
		total.Add(&st)
	}
	return total
}

// PerBusTransactions returns the completed-transaction count of each bus,
// used to demonstrate the even traffic split of Figure 7-1.
func (s *Set) PerBusTransactions() []uint64 {
	out := make([]uint64, len(s.buses))
	for i, b := range s.buses {
		st := b.Stats()
		out[i] = st.Transactions()
	}
	return out
}
