package bus

import "testing"

func TestNewSetValidatesSize(t *testing.T) {
	mem := newFakeMem()
	for _, bad := range []int{0, 3, 6, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSet(%d) did not panic", bad)
				}
			}()
			NewSet(mem, bad)
		}()
	}
	for _, ok := range []int{1, 2, 4, 8} {
		s := NewSet(mem, ok)
		if s.Len() != ok {
			t.Errorf("NewSet(%d).Len() = %d", ok, s.Len())
		}
	}
}

func TestBankOfInterleavesLowBits(t *testing.T) {
	s := NewSet(newFakeMem(), 2)
	if s.BankOf(0) != 0 || s.BankOf(1) != 1 || s.BankOf(2) != 0 || s.BankOf(3) != 1 {
		t.Fatal("2-bus interleave is not on the least significant bit")
	}
	s4 := NewSet(newFakeMem(), 4)
	for a := Addr(0); a < 16; a++ {
		if s4.BankOf(a) != int(a%4) {
			t.Fatalf("BankOf(%d) = %d, want %d", a, s4.BankOf(a), a%4)
		}
	}
}

// perBankReq supplies one write per grant, choosing the address matching
// the granting bank.
type perBankReq struct {
	addrs map[int]Addr // bank -> address to write
	data  Word
}

func (r *perBankReq) BusGrant(bank, banks int) (Request, bool) {
	a, ok := r.addrs[bank]
	if !ok {
		return Request{}, false
	}
	delete(r.addrs, bank)
	return Request{Op: OpWrite, Addr: a, Data: r.data}, true
}

func TestSetParallelGrants(t *testing.T) {
	mem := newFakeMem()
	s := NewSet(mem, 2)
	r0 := &perBankReq{addrs: map[int]Addr{0: 4}, data: 40}
	r1 := &perBankReq{addrs: map[int]Addr{1: 5}, data: 50}
	s.AttachRequester(0, r0)
	s.AttachRequester(1, r1)
	s.RequestSlot(4, 0)
	s.RequestSlot(5, 1)
	grants := s.Tick()
	if len(grants) != 2 {
		t.Fatalf("granted %d transactions in one cycle, want 2 (one per bus)", len(grants))
	}
	if mem.words[4] != 40 || mem.words[5] != 50 {
		t.Fatal("writes did not reach memory")
	}
	if grants[0].BusIndex != 0 || grants[1].BusIndex != 1 {
		t.Fatalf("grants = %+v, want bank order", grants)
	}
}

func TestSetAttachSnoopsAllBanks(t *testing.T) {
	mem := newFakeMem()
	s := NewSet(mem, 2)
	sn := &recSnooper{}
	s.Attach(7, sn)
	r := &perBankReq{addrs: map[int]Addr{0: 0, 1: 1}, data: 9}
	s.AttachRequester(0, r)
	s.RequestSlot(0, 0)
	s.RequestSlot(1, 0)
	s.Tick()
	if len(sn.writesSeen) != 2 {
		t.Fatalf("snooper saw %d writes across banks, want 2", len(sn.writesSeen))
	}
}

func TestSetAggregateStats(t *testing.T) {
	mem := newFakeMem()
	s := NewSet(mem, 2)
	s.AttachRequester(0, &perBankReq{addrs: map[int]Addr{0: 0}, data: 1})
	s.AttachRequester(1, &perBankReq{addrs: map[int]Addr{1: 1}, data: 2})
	s.RequestSlot(0, 0)
	s.RequestSlot(1, 1)
	s.Tick()
	st := s.Stats()
	if st.Transactions() != 2 {
		t.Fatalf("aggregate transactions = %d, want 2", st.Transactions())
	}
	per := s.PerBusTransactions()
	if per[0] != 1 || per[1] != 1 {
		t.Fatalf("per-bus transactions = %v, want [1 1]", per)
	}
}

func TestSetCancelSlotClearsAllBanks(t *testing.T) {
	s := NewSet(newFakeMem(), 2)
	s.AttachRequester(0, &perBankReq{addrs: map[int]Addr{}})
	s.RequestSlot(0, 0)
	s.RequestSlot(1, 0)
	s.CancelSlot(0)
	if s.Bus(0).Slotted(0) || s.Bus(1).Slotted(0) {
		t.Fatal("CancelSlot left a request line asserted")
	}
}

func TestSetPrioritySlot(t *testing.T) {
	mem := newFakeMem()
	s := NewSet(mem, 2)
	s.AttachRequester(0, &perBankReq{addrs: map[int]Addr{1: 1}, data: 7})
	s.PrioritySlot(1, 0)
	grants := s.Tick()
	if len(grants) != 1 || grants[0].BusIndex != 1 {
		t.Fatalf("grants = %+v, want one on bank 1", grants)
	}
}

func TestSetMemLatency(t *testing.T) {
	mem := newFakeMem()
	s := NewSet(mem, 2)
	s.SetMemLatency(1)
	s.AttachRequester(0, &perBankReq{addrs: map[int]Addr{0: 0}, data: 1})
	s.AttachRequester(1, &perBankReq{addrs: map[int]Addr{0: 2}, data: 2})
	s.RequestSlot(0, 0)
	if got := len(s.Tick()); got != 1 {
		t.Fatalf("first cycle grants = %d, want 1", got)
	}
	s.RequestSlot(2, 1) // same bank 0
	if got := len(s.Tick()); got != 0 {
		t.Fatalf("hold cycle grants = %d, want 0", got)
	}
	if got := len(s.Tick()); got != 1 {
		t.Fatalf("post-hold grants = %d, want 1", got)
	}
}
