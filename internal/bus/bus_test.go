package bus

import (
	"testing"
)

// fakeMem is a map-backed Memory for tests.
type fakeMem struct {
	words  map[Addr]Word
	reads  int
	writes int
}

func newFakeMem() *fakeMem { return &fakeMem{words: make(map[Addr]Word)} }

func (m *fakeMem) ReadWord(a Addr) Word     { m.reads++; return m.words[a] }
func (m *fakeMem) WriteWord(a Addr, w Word) { m.writes++; m.words[a] = w }

// recSnooper records snoop callbacks and can be programmed to inhibit.
type recSnooper struct {
	inhibitRead  bool
	flushRMW     bool
	flushData    Word
	writesSeen   []Request
	readDataSeen []Word
	rmwSnoops    int
}

func (s *recSnooper) SnoopRead(a Addr, src int) (bool, Word) {
	return s.inhibitRead, s.flushData
}

func (s *recSnooper) SnoopRMWRead(a Addr, src int) (bool, Word) {
	s.rmwSnoops++
	return s.flushRMW, s.flushData
}

func (s *recSnooper) ObserveWrite(op Op, a Addr, d Word, src int) {
	s.writesSeen = append(s.writesSeen, Request{Source: src, Op: op, Addr: a, Data: d})
}

func (s *recSnooper) ObserveReadData(a Addr, d Word, src int) {
	s.readDataSeen = append(s.readDataSeen, d)
}

// stubReq answers grants from a queue of requests; nil entries withdraw.
type stubReq struct {
	queue  []*Request
	grants int
}

func (r *stubReq) BusGrant(bank, banks int) (Request, bool) {
	r.grants++
	if len(r.queue) == 0 {
		return Request{}, false
	}
	head := r.queue[0]
	r.queue = r.queue[1:]
	if head == nil {
		return Request{}, false
	}
	return *head, true
}

// attach wires a requester that will supply the given requests for source
// id and asserts its slot.
func attach(b *Bus, id int, reqs ...*Request) *stubReq {
	r := &stubReq{queue: reqs}
	b.AttachRequester(id, r)
	b.RequestSlot(id)
	return r
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{OpRead: "BR", OpWrite: "BW", OpInv: "BI", OpRMW: "RMW"}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(99).String(); got != "Op(99)" {
		t.Errorf("unknown op String() = %q", got)
	}
}

func TestIdleCycle(t *testing.T) {
	b := New(newFakeMem())
	if _, _, granted := b.Tick(); granted {
		t.Fatal("idle Tick granted a transaction")
	}
	st := b.Stats()
	if st.IdleCycles != 1 || st.BusyCycles != 0 {
		t.Fatalf("stats = %+v, want 1 idle", st)
	}
}

func TestReadFromMemoryBroadcastsData(t *testing.T) {
	mem := newFakeMem()
	mem.words[5] = 42
	b := New(mem)
	s1, s2 := &recSnooper{}, &recSnooper{}
	b.Attach(1, s1)
	b.Attach(2, s2)
	attach(b, 0, &Request{Op: OpRead, Addr: 5})

	req, res, granted := b.Tick()
	if !granted || req.Op != OpRead || req.Source != 0 {
		t.Fatalf("read not granted: %+v", req)
	}
	if res.Killed || res.Data != 42 {
		t.Fatalf("result = %+v, want data 42", res)
	}
	if len(s1.readDataSeen) != 1 || s1.readDataSeen[0] != 42 {
		t.Fatalf("snooper 1 read-data = %v, want [42]", s1.readDataSeen)
	}
	if len(s2.readDataSeen) != 1 {
		t.Fatalf("snooper 2 did not observe the broadcast")
	}
}

func TestReadNotOfferedToIssuer(t *testing.T) {
	b := New(newFakeMem())
	issuer := &recSnooper{inhibitRead: true, flushData: 9} // would inhibit its own read
	b.Attach(0, issuer)
	attach(b, 0, &Request{Op: OpRead, Addr: 1})
	_, res, _ := b.Tick()
	if res.Killed {
		t.Fatal("issuer's own snooper inhibited its read")
	}
	if len(issuer.readDataSeen) != 0 {
		t.Fatal("issuer observed its own read broadcast")
	}
}

func TestLocalOwnerKillsReadAndFlushes(t *testing.T) {
	mem := newFakeMem()
	mem.words[7] = 1 // stale
	b := New(mem)
	owner := &recSnooper{inhibitRead: true, flushData: 99}
	other := &recSnooper{}
	b.Attach(1, owner)
	b.Attach(2, other)
	requester := attach(b, 0, &Request{Op: OpRead, Addr: 7})

	_, res, _ := b.Tick()
	if !res.Killed {
		t.Fatal("read was not killed by the Local owner")
	}
	if mem.words[7] != 99 {
		t.Fatalf("memory = %d after flush, want 99", mem.words[7])
	}
	// The flush is observed as a bus write by the other snoopers.
	if len(other.writesSeen) != 1 || other.writesSeen[0].Op != OpWrite ||
		other.writesSeen[0].Data != 99 || other.writesSeen[0].Source != 1 {
		t.Fatalf("other snooper saw %+v, want flush write of 99 from source 1", other.writesSeen)
	}
	st := b.Stats()
	if st.KilledReads != 1 || st.FlushWrites != 1 {
		t.Fatalf("stats = %+v, want 1 killed read and 1 flush", st)
	}

	// After flushing, a real cache leaves the Local state, so the retried
	// read (granted via the priority slot) succeeds from updated memory.
	owner.inhibitRead = false
	requester.queue = append(requester.queue, &Request{Op: OpRead, Addr: 7, Retry: true})
	b.PrioritySlot(0)
	_, res2, _ := b.Tick()
	if res2.Killed {
		t.Fatal("retried read was killed again")
	}
	if res2.Data != 99 {
		t.Fatalf("retried read data = %d, want 99", res2.Data)
	}
	if b.Stats().Retries != 1 {
		t.Fatal("retry not counted")
	}
}

func TestPriorityBeatsOrdinaryRequests(t *testing.T) {
	b := New(newFakeMem())
	attach(b, 3, &Request{Op: OpWrite, Addr: 1, Data: 1})
	attach(b, 4, &Request{Op: OpWrite, Addr: 2, Data: 2})
	b.AttachRequester(0, &stubReq{queue: []*Request{{Op: OpRead, Addr: 9, Retry: true}}})
	b.PrioritySlot(0)
	req, _, granted := b.Tick()
	if !granted || req.Source != 0 || req.Op != OpRead {
		t.Fatalf("granted %+v, want the priority retry from source 0", req)
	}
}

func TestDoublePriorityPanics(t *testing.T) {
	b := New(newFakeMem())
	b.AttachRequester(0, &stubReq{})
	b.AttachRequester(1, &stubReq{})
	b.PrioritySlot(0)
	b.PrioritySlot(0) // same holder: fine
	defer func() {
		if recover() == nil {
			t.Fatal("second priority holder did not panic")
		}
	}()
	b.PrioritySlot(1)
}

func TestWithdrawnGrantMovesOnSameCycle(t *testing.T) {
	mem := newFakeMem()
	b := New(mem)
	// Source 0 withdraws; source 1 should be granted in the same cycle.
	attach(b, 0, nil)
	attach(b, 1, &Request{Op: OpWrite, Addr: 2, Data: 5})
	req, _, granted := b.Tick()
	if !granted || req.Source != 1 {
		t.Fatalf("granted %+v, want source 1 after 0 withdrew", req)
	}
	if b.Stats().Withdrawn != 1 {
		t.Fatal("withdrawal not counted")
	}
	if mem.words[2] != 5 {
		t.Fatal("source 1's write lost")
	}
}

func TestAllWithdrawnIsIdle(t *testing.T) {
	b := New(newFakeMem())
	attach(b, 0, nil)
	if _, _, granted := b.Tick(); granted {
		t.Fatal("granted despite withdrawal")
	}
	if b.Stats().IdleCycles != 1 {
		t.Fatal("cycle not counted idle")
	}
}

func TestRoundRobinFairness(t *testing.T) {
	b := New(newFakeMem())
	granted := make(map[int]int)
	reqs := make([]*stubReq, 3)
	for i := 0; i < 3; i++ {
		i := i
		reqs[i] = &stubReq{}
		b.AttachRequester(i, grantFunc(func(bank, banks int) (Request, bool) {
			return Request{Op: OpWrite, Addr: Addr(i), Data: 1}, true
		}))
		b.RequestSlot(i)
	}
	for cycle := 0; cycle < 30; cycle++ {
		req, _, ok := b.Tick()
		if !ok {
			t.Fatal("bus idle while requests pending")
		}
		granted[req.Source]++
		b.RequestSlot(req.Source) // stay hungry
	}
	for s := 0; s < 3; s++ {
		if granted[s] != 10 {
			t.Fatalf("source %d granted %d times in 30 cycles, want 10 (got %v)", s, granted[s], granted)
		}
	}
}

// grantFunc adapts a function to the Requester interface.
type grantFunc func(bank, banks int) (Request, bool)

func (f grantFunc) BusGrant(bank, banks int) (Request, bool) { return f(bank, banks) }

func TestRoundRobinRotatesAfterWinner(t *testing.T) {
	b := New(newFakeMem())
	for _, id := range []int{0, 1, 2} {
		id := id
		b.AttachRequester(id, grantFunc(func(bank, banks int) (Request, bool) {
			return Request{Op: OpWrite, Addr: Addr(id), Data: 1}, true
		}))
	}
	b.RequestSlot(2)
	b.RequestSlot(0)
	req, _, _ := b.Tick() // lastWin starts at -1, so source 0 wins first
	if req.Source != 0 {
		t.Fatalf("first grant to source %d, want 0", req.Source)
	}
	b.RequestSlot(1)
	req, _, _ = b.Tick() // after 0, cyclic order says 1
	if req.Source != 1 {
		t.Fatalf("second grant to source %d, want 1", req.Source)
	}
	req, _, _ = b.Tick()
	if req.Source != 2 {
		t.Fatalf("third grant to source %d, want 2", req.Source)
	}
}

func TestRequestSlotIdempotent(t *testing.T) {
	b := New(newFakeMem())
	b.AttachRequester(0, &stubReq{})
	b.RequestSlot(0)
	b.RequestSlot(0)
	if b.PendingLen() != 1 {
		t.Fatalf("PendingLen = %d after double assert, want 1", b.PendingLen())
	}
	if !b.Slotted(0) {
		t.Fatal("Slotted(0) = false")
	}
	b.CancelSlot(0)
	if b.Slotted(0) || b.PendingLen() != 0 {
		t.Fatal("CancelSlot did not clear the line")
	}
}

func TestWriteUpdatesMemoryAndBroadcasts(t *testing.T) {
	mem := newFakeMem()
	b := New(mem)
	s := &recSnooper{}
	b.Attach(1, s)
	attach(b, 0, &Request{Op: OpWrite, Addr: 3, Data: 77})
	b.Tick()
	if mem.words[3] != 77 {
		t.Fatalf("memory = %d, want 77", mem.words[3])
	}
	if len(s.writesSeen) != 1 || s.writesSeen[0].Data != 77 {
		t.Fatalf("snooper saw %+v", s.writesSeen)
	}
}

func TestInvalidateDoesNotTouchMemory(t *testing.T) {
	mem := newFakeMem()
	mem.words[3] = 5
	b := New(mem)
	s := &recSnooper{}
	b.Attach(1, s)
	attach(b, 0, &Request{Op: OpInv, Addr: 3})
	b.Tick()
	if mem.words[3] != 5 || mem.writes != 0 {
		t.Fatal("invalidate touched memory")
	}
	if len(s.writesSeen) != 1 || s.writesSeen[0].Op != OpInv {
		t.Fatalf("snooper saw %+v, want one BI", s.writesSeen)
	}
}

func TestRMWSuccessOnZero(t *testing.T) {
	mem := newFakeMem()
	b := New(mem)
	s := &recSnooper{}
	b.Attach(1, s)
	attach(b, 0, &Request{Op: OpRMW, Addr: 8, Data: 1})
	_, res, _ := b.Tick()
	if !res.RMWSuccess || res.Data != 0 {
		t.Fatalf("result = %+v, want success with old value 0", res)
	}
	if mem.words[8] != 1 {
		t.Fatalf("memory = %d, want 1 (lock taken)", mem.words[8])
	}
	if len(s.writesSeen) != 1 || s.writesSeen[0].Data != 1 || s.writesSeen[0].Op != OpWrite {
		t.Fatalf("snooper saw %+v", s.writesSeen)
	}
	if b.Stats().RMWSuccess != 1 {
		t.Fatal("RMWSuccess not counted")
	}
}

func TestRMWSuccessWithInvalidateBroadcast(t *testing.T) {
	mem := newFakeMem()
	b := New(mem)
	s := &recSnooper{}
	b.Attach(1, s)
	attach(b, 0, &Request{Op: OpRMW, Addr: 8, Data: 1, SuccessOp: OpInv})
	_, res, _ := b.Tick()
	if !res.RMWSuccess {
		t.Fatal("RMW failed")
	}
	if mem.words[8] != 1 {
		t.Fatal("memory not updated by locked write")
	}
	if len(s.writesSeen) != 1 || s.writesSeen[0].Op != OpInv {
		t.Fatalf("snooper saw %+v, want one BI", s.writesSeen)
	}
}

func TestRMWFailureOnNonzero(t *testing.T) {
	mem := newFakeMem()
	mem.words[8] = 1 // already locked
	b := New(mem)
	s := &recSnooper{}
	b.Attach(1, s)
	attach(b, 0, &Request{Op: OpRMW, Addr: 8, Data: 1})
	_, res, _ := b.Tick()
	if res.RMWSuccess {
		t.Fatal("RMW succeeded on a held lock")
	}
	if res.Data != 1 {
		t.Fatalf("old value = %d, want 1", res.Data)
	}
	if len(s.writesSeen) != 0 || len(s.readDataSeen) != 0 {
		t.Fatal("failed RMW broadcast something")
	}
	if b.Stats().RMWFailure != 1 {
		t.Fatal("RMWFailure not counted")
	}
}

func TestRMWDirtyOwnerFlushes(t *testing.T) {
	mem := newFakeMem()
	mem.words[8] = 1 // stale: the owner released the lock locally
	b := New(mem)
	owner := &recSnooper{flushRMW: true, flushData: 0}
	b.Attach(1, owner)
	attach(b, 0, &Request{Op: OpRMW, Addr: 8, Data: 1})
	_, res, _ := b.Tick()
	if !res.RMWSuccess {
		t.Fatal("RMW failed even though the dirty owner held 0")
	}
	if res.Data != 0 {
		t.Fatalf("locked read observed %d, want flushed 0", res.Data)
	}
	if mem.words[8] != 1 {
		t.Fatalf("memory = %d after flush+set, want 1", mem.words[8])
	}
	if b.Stats().RMWFlushes != 1 {
		t.Fatal("RMWFlushes not counted")
	}
}

func TestMemLatencyHoldsBus(t *testing.T) {
	b := New(newFakeMem())
	b.MemLatency = 2
	attach(b, 0, &Request{Op: OpWrite, Addr: 1, Data: 1})
	attach(b, 1, &Request{Op: OpWrite, Addr: 2, Data: 2})
	if _, _, ok := b.Tick(); !ok {
		t.Fatal("first transaction not granted")
	}
	for i := 0; i < 2; i++ {
		if _, _, ok := b.Tick(); ok {
			t.Fatalf("transaction granted during hold cycle %d", i)
		}
	}
	if req, _, ok := b.Tick(); !ok || req.Source != 1 {
		t.Fatal("second transaction not granted after hold")
	}
	st := b.Stats()
	if st.BusyCycles != 4 {
		t.Fatalf("busy cycles = %d, want 4 (2 grants + 2 holds)", st.BusyCycles)
	}
}

func TestBankEnforcement(t *testing.T) {
	b := New(newFakeMem())
	b.Bank, b.Banks = 0, 2
	// Supplying an odd address on bank 0 is a driver bug.
	b.AttachRequester(0, grantFunc(func(bank, banks int) (Request, bool) {
		return Request{Op: OpWrite, Addr: 3, Data: 1}, true
	}))
	b.RequestSlot(0)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-bank request did not panic")
		}
	}()
	b.Tick()
}

func TestAttachValidation(t *testing.T) {
	b := New(newFakeMem())
	b.Attach(0, &recSnooper{})
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate snooper", func() { b.Attach(0, &recSnooper{}) })
	mustPanic("nil snooper", func() { b.Attach(1, nil) })
	mustPanic("nil requester", func() { b.AttachRequester(1, nil) })
	b.AttachRequester(1, &stubReq{})
	mustPanic("duplicate requester", func() { b.AttachRequester(1, &stubReq{}) })
	mustPanic("slot for unattached source", func() { b.RequestSlot(9) })
	mustPanic("priority for unattached source", func() { b.PrioritySlot(9) })
}

func TestStatsAccessors(t *testing.T) {
	mem := newFakeMem()
	b := New(mem)
	attach(b, 0, &Request{Op: OpWrite, Addr: 1, Data: 1})
	b.Tick()
	b.Tick() // idle
	st := b.Stats()
	if st.Transactions() != 1 || st.Writes() != 1 || st.Reads() != 0 ||
		st.Invalidates() != 0 || st.RMWs() != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.Utilization(); got != 0.5 {
		t.Fatalf("Utilization() = %g, want 0.5", got)
	}
	var empty Stats
	if empty.Utilization() != 0 {
		t.Fatal("empty Utilization() != 0")
	}
}

func TestTraceCallback(t *testing.T) {
	b := New(newFakeMem())
	var traced []Request
	b.Trace = func(cycle uint64, r Request, res Result) { traced = append(traced, r) }
	attach(b, 0, &Request{Op: OpWrite, Addr: 1, Data: 1})
	b.Tick()
	if len(traced) != 1 || traced[0].Op != OpWrite {
		t.Fatalf("trace = %+v", traced)
	}
}

func TestNilMemoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil) did not panic")
		}
	}()
	New(nil)
}

func TestUnknownOpPanics(t *testing.T) {
	b := New(newFakeMem())
	attach(b, 0, &Request{Op: Op(9), Addr: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op did not panic")
		}
	}()
	b.Tick()
}

// stallMem refuses accesses until armed, recording Ready calls.
type stallMem struct {
	fakeMem
	ready      bool
	readyCalls int
	rmwOld     Word
	rmwCalls   int
}

func newStallMem() *stallMem {
	return &stallMem{fakeMem: fakeMem{words: make(map[Addr]Word)}}
}

func (m *stallMem) Ready(r Request) bool {
	m.readyCalls++
	return m.ready
}

func TestStallableMemoryDefersTransaction(t *testing.T) {
	mem := newStallMem()
	b := New(mem)
	attach(b, 0, &Request{Op: OpWrite, Addr: 1, Data: 9}, &Request{Op: OpWrite, Addr: 1, Data: 9})
	if _, _, granted := b.Tick(); granted {
		t.Fatal("not-ready transaction executed")
	}
	if mem.writes != 0 {
		t.Fatal("memory written while stalled")
	}
	if b.Stats().Stalled != 1 {
		t.Fatal("stall not counted")
	}
	// The slot stays asserted; once ready, the transaction executes.
	if !b.Slotted(0) {
		t.Fatal("stalled source lost its slot")
	}
	mem.ready = true
	if _, _, granted := b.Tick(); !granted {
		t.Fatal("ready transaction not granted")
	}
	if mem.words[1] != 9 {
		t.Fatal("write lost")
	}
}

func TestStallSkipsToReadyRequester(t *testing.T) {
	// Source 0 stalls (a "miss"), source 1's transaction is ready: the
	// bus must not idle.
	mem := newStallMem()
	b := New(mem)
	b.AttachRequester(0, grantFunc(func(bank, banks int) (Request, bool) {
		return Request{Op: OpRead, Addr: 1}, true
	}))
	b.AttachRequester(1, grantFunc(func(bank, banks int) (Request, bool) {
		return Request{Op: OpInv, Addr: 2}, true // OpInv never consults memory
	}))
	b.RequestSlot(0)
	b.RequestSlot(1)
	req, _, granted := b.Tick()
	if !granted || req.Source != 1 {
		t.Fatalf("granted %+v, want source 1's invalidate", req)
	}
	if !b.Slotted(0) {
		t.Fatal("stalled source 0 lost its slot")
	}
}

func (m *stallMem) RMW(a Addr, set Word) Word {
	m.rmwCalls++
	old := m.rmwOld
	if old == 0 {
		m.words[a] = set
	}
	return old
}

func TestDelegatedRMW(t *testing.T) {
	mem := newStallMem()
	mem.ready = true
	b := New(mem)
	s := &recSnooper{}
	b.Attach(1, s)
	attach(b, 0, &Request{Op: OpRMW, Addr: 5, Data: 7})
	_, res, _ := b.Tick()
	if mem.rmwCalls != 1 {
		t.Fatal("RMW not delegated to the memory port")
	}
	if !res.RMWSuccess || res.Data != 0 {
		t.Fatalf("result = %+v", res)
	}
	if mem.words[5] != 7 {
		t.Fatal("delegated set lost")
	}
	if len(s.writesSeen) != 1 {
		t.Fatal("success write not broadcast")
	}
	// A failing delegated RMW broadcasts nothing.
	mem.rmwOld = 1
	attachID2 := &stubReq{queue: []*Request{{Op: OpRMW, Addr: 5, Data: 7}}}
	b.AttachRequester(2, attachID2)
	b.RequestSlot(2)
	_, res, _ = b.Tick()
	if res.RMWSuccess || res.Data != 1 {
		t.Fatalf("failing RMW result = %+v", res)
	}
	if len(s.writesSeen) != 1 {
		t.Fatal("failed RMW broadcast a write")
	}
}

func TestLockRegister(t *testing.T) {
	mem := newFakeMem()
	b := New(mem)
	if h, _ := b.Locked(); h != -1 {
		t.Fatal("fresh bus holds a lock")
	}
	// A locked read takes the lock.
	holder := attach(b, 0, &Request{Op: OpRead, Addr: 9, Lock: true})
	b.Tick()
	if h, a := b.Locked(); h != 0 || a != 9 {
		t.Fatalf("lock = (%d, %d), want (0, 9)", h, a)
	}
	// Another source's write to the locked word stalls; its slot stays.
	writer := attach(b, 1, &Request{Op: OpWrite, Addr: 9, Data: 5})
	if _, _, granted := b.Tick(); granted {
		t.Fatal("write to locked word executed")
	}
	if !b.Slotted(1) {
		t.Fatal("stalled writer lost its slot")
	}
	// A second locker stalls too (one lock register), as does a plain
	// read of the locked word.
	attach(b, 2, &Request{Op: OpRead, Addr: 42, Lock: true})
	attach(b, 3, &Request{Op: OpRead, Addr: 9})
	if _, _, granted := b.Tick(); granted {
		t.Fatal("transaction executed while everything should stall")
	}
	// The holder's unlocking write passes and releases the register;
	// refill the stalled requesters' queues (their earlier grants
	// consumed entries).
	holder.queue = append(holder.queue, &Request{Op: OpWrite, Addr: 9, Data: 7, Unlock: true})
	b.RequestSlot(0)
	req, _, granted := b.Tick()
	if !granted || req.Source != 0 || !req.Unlock {
		t.Fatalf("granted %+v, want the holder's unlock", req)
	}
	if h, _ := b.Locked(); h != -1 {
		t.Fatal("unlock did not release")
	}
	if mem.words[9] != 7 {
		t.Fatal("unlock write lost")
	}
	// The stalled writer proceeds now. (The stub requester consumed its
	// queued request during the stalled grant attempts and withdrew, so
	// re-arm both queue and slot.)
	writer.queue = append(writer.queue, &Request{Op: OpWrite, Addr: 9, Data: 5})
	b.RequestSlot(1)
	var sawWriter bool
	for i := 0; i < 4; i++ {
		if req, _, ok := b.Tick(); ok && req.Source == 1 {
			sawWriter = true
		}
	}
	if !sawWriter {
		t.Fatal("stalled writer never granted after unlock")
	}
	if mem.words[9] != 5 {
		t.Fatal("writer's value lost")
	}
}

func TestUnlockByNonHolderPanics(t *testing.T) {
	b := New(newFakeMem())
	attach(b, 0, &Request{Op: OpRead, Addr: 9, Lock: true})
	b.Tick()
	attach(b, 1, &Request{Op: OpWrite, Addr: 8, Data: 1, Unlock: true})
	defer func() {
		if recover() == nil {
			t.Fatal("foreign unlock did not panic")
		}
	}()
	// Address 8 is not the locked word, so the write itself is allowed —
	// but its Unlock flag is a protocol violation.
	b.Tick()
}

func TestKilledLockedReadDoesNotTakeLock(t *testing.T) {
	mem := newFakeMem()
	b := New(mem)
	owner := &recSnooper{inhibitRead: true, flushData: 3}
	b.Attach(5, owner)
	attach(b, 0, &Request{Op: OpRead, Addr: 9, Lock: true})
	_, res, _ := b.Tick()
	if !res.Killed {
		t.Fatal("read not killed")
	}
	if h, _ := b.Locked(); h != -1 {
		t.Fatal("killed locked read took the lock")
	}
}

// TestRegisterOrderIndependence pins grant-order determinism against the
// registration order of requesters: arbitration is a function of slot
// assertion order and round-robin rotation only, never of the order
// AttachRequester was called in. With the historical map registry this
// held because grant order was recomputed from the slots; the
// slice-backed registry pins it explicitly.
func TestRegisterOrderIndependence(t *testing.T) {
	run := func(ids []int) []int {
		b := New(newFakeMem())
		for _, id := range ids {
			// Each source supplies a stream of writes tagged with its id.
			b.AttachRequester(id, &stubReq{queue: []*Request{
				{Op: OpWrite, Addr: Addr(id), Data: Word(id)},
				{Op: OpWrite, Addr: Addr(id), Data: Word(id)},
			}})
		}
		// Slots asserted in fixed ascending order regardless of the
		// registration order.
		for id := 0; id < len(ids); id++ {
			b.RequestSlot(id)
		}
		var trace []int
		for i := 0; i < 2*len(ids); i++ {
			req, _, granted := b.Tick()
			if !granted {
				break
			}
			trace = append(trace, req.Source)
			b.RequestSlot(req.Source)
		}
		return trace
	}

	want := run([]int{0, 1, 2, 3})
	if len(want) == 0 {
		t.Fatal("no transactions granted")
	}
	for _, order := range [][]int{{3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}} {
		got := run(order)
		if len(got) != len(want) {
			t.Fatalf("registration order %v: %d grants, want %d", order, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("registration order %v: arbitration trace %v, want %v", order, got, want)
			}
		}
	}
}

// TestSetTickScratchReuse pins that Set.Tick reuses its grant buffer
// (no per-cycle allocation) while still returning the cycle's grants.
func TestSetTickScratchReuse(t *testing.T) {
	mem := newFakeMem()
	s := NewSet(mem, 1)
	s.AttachRequester(0, &stubReq{queue: []*Request{
		{Op: OpWrite, Addr: 1, Data: 10},
		{Op: OpWrite, Addr: 2, Data: 20},
	}})
	s.RequestSlot(1, 0)
	first := s.Tick()
	if len(first) != 1 || first[0].Req.Data != 10 {
		t.Fatalf("first Tick grants = %+v", first)
	}
	s.RequestSlot(2, 0)
	second := s.Tick()
	if len(second) != 1 || second[0].Req.Data != 20 {
		t.Fatalf("second Tick grants = %+v", second)
	}
	// The scratch is reused: the first slice now aliases the second
	// cycle's contents, which is exactly why callers must not retain it.
	if &first[0] != &second[0] {
		t.Fatal("Set.Tick allocated a fresh grant buffer; expected reuse")
	}
}
