package bus

// Presence is an exact per-address record of which snooper ids hold a
// cache frame for the address (valid frame, matching tag — precisely the
// condition under which the cache's lookup succeeds). Every snoop
// callback (SnoopRead, SnoopRMWRead, ObserveWrite, ObserveReadData) and
// the shared-line probe (HasCopy) are no-ops for a cache whose lookup
// misses, so a bus holding a Presence table dispatches snoops only to the
// recorded holders instead of broadcasting to every attached snooper.
// With many PEs the broadcast is the simulator's dominant cost — each
// transaction would otherwise probe every cache's tag store — and the
// masked dispatch is behavior-identical because skipped caches would have
// done nothing.
//
// The table is an optimization contract, not a coherence directory: the
// caches themselves must keep it exact by calling Add when a frame starts
// holding an address (install) and Remove when it stops (eviction,
// write-back invalidation, an RMW dropping its copy). The protocol state
// of the frame is irrelevant — a valid frame in state Invalid is still
// recorded, because its cache still reacts to snoops (if only by running
// the protocol's identity transitions), exactly as lookup would find it.
//
// Masks are one uint64 per address, so ids must be below MaxPresenceIDs;
// machines with more snoopers simply run without a table (nil Presence =
// full broadcast, the original behavior).
// The caches maintain the table from whichever phase installs or evicts a
// frame (bus completions, snoop reactions, CPU-phase evictions), so the
// holder state is //phase:any.
type Presence struct {
	//phase:any
	pages []*presencePage
	// gen is the table generation; pages stamped with an older value hold
	// no ids (they are cleared and re-stamped on the next Add). Written
	// only by Reset, between runs — never from phase code — so it carries
	// no phase annotation.
	gen uint64
	//phase:any
	sparse map[Addr]uint64 // addresses >= presenceDenseLimit
}

// MaxPresenceIDs is the largest snooper population a Presence can track.
const MaxPresenceIDs = 64

const (
	presencePageBits   = 12
	presencePageWords  = 1 << presencePageBits
	presencePageMask   = presencePageWords - 1
	presenceDenseLimit = Addr(1) << 24
)

type presencePage struct {
	//phase:any
	masks [presencePageWords]uint64
	//phase:any
	gen uint64 // Presence.gen value this page's masks belong to
}

// NewPresence returns an empty table.
func NewPresence() *Presence {
	return &Presence{}
}

// Reset empties the table without releasing its pages: the generation
// counter is bumped, so every dense page reads as holder-free and is
// cleared in place the first time the new generation records a holder.
func (p *Presence) Reset() {
	p.gen++
	clear(p.sparse)
}

// Add records that snooper id holds a frame for a. The page-growth
// allocations are one-time per page; the steady-state path is a mask OR.
//
//phase:any
//hotpath:allocfree
func (p *Presence) Add(a Addr, id int) {
	if a < presenceDenseLimit {
		pi := int(a >> presencePageBits)
		if pi >= len(p.pages) {
			//lint:ignore allocaudit one-time growth of the dense page directory
			grown := make([]*presencePage, pi+1)
			copy(grown, p.pages)
			p.pages = grown
		}
		pg := p.pages[pi]
		if pg == nil {
			//lint:ignore allocaudit one-time allocation of a dense page
			pg = &presencePage{gen: p.gen}
			p.pages[pi] = pg
		} else if pg.gen != p.gen {
			// Recycled from before the last Reset: clear in place, never
			// reallocate — the whole point of the generation stamp.
			pg.masks = [presencePageWords]uint64{}
			pg.gen = p.gen
		}
		pg.masks[a&presencePageMask] |= 1 << uint(id)
		return
	}
	if p.sparse == nil {
		//lint:ignore allocaudit one-time lazy init of the sparse fallback map
		p.sparse = make(map[Addr]uint64)
	}
	p.sparse[a] |= 1 << uint(id)
}

// Remove records that snooper id no longer holds a frame for a.
//
//phase:any
//hotpath:allocfree
func (p *Presence) Remove(a Addr, id int) {
	if a < presenceDenseLimit {
		pi := int(a >> presencePageBits)
		if pi < len(p.pages) && p.pages[pi] != nil && p.pages[pi].gen == p.gen {
			p.pages[pi].masks[a&presencePageMask] &^= 1 << uint(id)
		}
		return
	}
	if m, ok := p.sparse[a]; ok {
		m &^= 1 << uint(id)
		if m == 0 {
			delete(p.sparse, a)
		} else {
			p.sparse[a] = m
		}
	}
}

// Mask returns the holder bitmask for a (bit id set = id holds a frame).
func (p *Presence) Mask(a Addr) uint64 {
	if a < presenceDenseLimit {
		pi := int(a >> presencePageBits)
		if pi < len(p.pages) && p.pages[pi] != nil && p.pages[pi].gen == p.gen {
			return p.pages[pi].masks[a&presencePageMask]
		}
		return 0
	}
	return p.sparse[a]
}
