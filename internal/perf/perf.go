// Package perf is the core performance layer (S22): a fixed suite of
// representative machines whose steady-state cycle loop is timed and
// allocation-audited. The sweep bench (BENCH_sweep.json) measures
// throughput *across* experiment jobs; this suite measures the quantity
// that bounds every one of those jobs — simulated bus cycles per second
// of one machine — together with allocations per cycle, the number the
// flat-core refactor pins at zero in steady state (oracle off).
//
// `make bench-core` runs the suite through cmd/benchcore and writes
// BENCH_core.json, which also carries the pre-refactor baseline
// (baseline.go) so every future run reports its speedup against the
// map-backed core this layer replaced.
package perf

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/workload"
)

// Scenario is one representative machine of the suite.
type Scenario struct {
	// Name identifies the scenario in BENCH_core.json and baseline.go:
	// "<protocol>-<n>pe" with an "-oracle" suffix when the consistency
	// oracle is on.
	Name string
	// PEs is the processor count (the 64-PE rows are the Section 7
	// saturation regime: one bus, far past its knee).
	PEs int
	// Protocol is the coherence scheme name (coherence.ByName).
	Protocol string
	// Oracle enables the read-latest consistency check on every
	// retirement.
	Oracle bool
	// Cycles is the measured steady-state run length; Warmup cycles are
	// executed (and discarded) first so page allocations, cache fills
	// and scratch-buffer growth are behind the measurement.
	Cycles, Warmup uint64
}

// Scenarios returns the fixed suite: 1/8/64 PEs x RB/RWB x oracle
// on/off, all on a single shared bus with paper-scale (2048-line)
// caches and the Table 1-1 synthetic application mix.
func Scenarios() []Scenario {
	var out []Scenario
	for _, proto := range []string{"rb", "rwb"} {
		for _, pes := range []int{1, 8, 64} {
			for _, oracle := range []bool{false, true} {
				name := fmt.Sprintf("%s-%dpe", proto, pes)
				if oracle {
					name += "-oracle"
				}
				out = append(out, Scenario{
					Name:     name,
					PEs:      pes,
					Protocol: proto,
					Oracle:   oracle,
					Cycles:   200_000,
					Warmup:   20_000,
				})
			}
		}
	}
	return out
}

// ScenarioByName returns the named scenario from the suite.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("perf: unknown scenario %q", name)
}

// Result is one scenario's measurements.
type Result struct {
	Name           string  `json:"name"`
	PEs            int     `json:"pes"`
	Protocol       string  `json:"protocol"`
	Oracle         bool    `json:"oracle"`
	Cycles         uint64  `json:"cycles"`
	WallMS         float64 `json:"wall_ms"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	RefsRetired    uint64  `json:"refs_retired"`
}

// Build assembles the scenario's machine: unbounded synthetic-app
// agents (maxRefs 0) so the loop never drains, one bus, 2048-line
// direct-mapped caches, watchdog off.
func Build(s Scenario) (*machine.Machine, error) {
	proto, err := coherence.ByName(s.Protocol)
	if err != nil {
		return nil, err
	}
	layout := workload.DefaultLayout()
	agents := make([]workload.Agent, s.PEs)
	for i := range agents {
		app, err := workload.NewApp(workload.PDEProfile(), layout, i, 1, 0)
		if err != nil {
			return nil, err
		}
		agents[i] = app
	}
	return machine.New(machine.Config{
		Protocol:         proto,
		CacheLines:       2048,
		CheckConsistency: s.Oracle,
	}, agents)
}

// now reads the wall clock for throughput measurement only.
//
//lint:ignore observability-only wall time; simulation results never depend on it
func now() time.Time { return time.Now() }

// Run executes one scenario: build, warm up, then time s.Cycles steps
// and report cycles/sec and allocs/cycle over the measured window.
func Run(s Scenario) (Result, error) {
	m, err := Build(s)
	if err != nil {
		return Result{}, err
	}
	if err := m.RunFor(s.Warmup); err != nil {
		return Result{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := now()
	if err := m.RunFor(s.Cycles); err != nil {
		return Result{}, err
	}
	wall := now().Sub(start)
	runtime.ReadMemStats(&after)

	r := Result{
		Name:        s.Name,
		PEs:         s.PEs,
		Protocol:    s.Protocol,
		Oracle:      s.Oracle,
		Cycles:      s.Cycles,
		WallMS:      float64(wall) / float64(time.Millisecond),
		RefsRetired: m.Metrics().TotalRefs(),
	}
	if wall > 0 {
		r.CyclesPerSec = float64(s.Cycles) / wall.Seconds()
	}
	r.AllocsPerCycle = float64(after.Mallocs-before.Mallocs) / float64(s.Cycles)
	r.BytesPerCycle = float64(after.TotalAlloc-before.TotalAlloc) / float64(s.Cycles)
	return r, nil
}
