package perf

// BaselineEntry is one scenario's pre-refactor measurement.
type BaselineEntry struct {
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

// BaselineCommit identifies the tree the baseline was measured on: the
// last commit whose simulator core used map-backed word storage, a
// map-backed bus registry, and per-miss/per-retirement heap
// allocations.
const BaselineCommit = "bcf57c2"

// Baseline holds the pre-refactor suite measurements, recorded with
// this same harness (identical scenarios, cycle counts and warmup)
// immediately before the flat-core refactor landed. BENCH_core.json
// embeds these numbers so every run reports speedup against them.
var Baseline = map[string]BaselineEntry{
	"rb-1pe":          {CyclesPerSec: 6075355, AllocsPerCycle: 1.366},
	"rb-1pe-oracle":   {CyclesPerSec: 5270182, AllocsPerCycle: 1.367},
	"rb-8pe":          {CyclesPerSec: 692834, AllocsPerCycle: 8.312},
	"rb-8pe-oracle":   {CyclesPerSec: 539086, AllocsPerCycle: 8.312},
	"rb-64pe":         {CyclesPerSec: 110954, AllocsPerCycle: 8.928},
	"rb-64pe-oracle":  {CyclesPerSec: 107419, AllocsPerCycle: 8.929},
	"rwb-1pe":         {CyclesPerSec: 6049154, AllocsPerCycle: 1.421},
	"rwb-1pe-oracle":  {CyclesPerSec: 4902740, AllocsPerCycle: 1.421},
	"rwb-8pe":         {CyclesPerSec: 709195, AllocsPerCycle: 8.736},
	"rwb-8pe-oracle":  {CyclesPerSec: 564990, AllocsPerCycle: 8.736},
	"rwb-64pe":        {CyclesPerSec: 113092, AllocsPerCycle: 8.830},
	"rwb-64pe-oracle": {CyclesPerSec: 99797, AllocsPerCycle: 8.831},
}
