package perf

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mrc"
)

// TestScenarioNamesMatchBaseline pins the suite/baseline contract:
// BENCH_core.json can only report speedups for scenarios the baseline
// actually measured.
func TestScenarioNamesMatchBaseline(t *testing.T) {
	names := map[string]bool{}
	for _, s := range Scenarios() {
		if names[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		names[s.Name] = true
		if _, ok := Baseline[s.Name]; !ok {
			t.Errorf("scenario %q has no baseline entry", s.Name)
		}
	}
	for name := range Baseline {
		if !names[name] {
			t.Errorf("baseline entry %q has no scenario", name)
		}
	}
}

func TestScenarioByName(t *testing.T) {
	s, err := ScenarioByName("rb-64pe")
	if err != nil {
		t.Fatal(err)
	}
	if s.PEs != 64 || s.Protocol != "rb" || s.Oracle {
		t.Fatalf("rb-64pe resolved to %+v", s)
	}
	if _, err := ScenarioByName("nonesuch"); err == nil {
		t.Fatal("expected an error for an unknown scenario")
	}
}

// TestSteadyStateAllocFree is the allocation regression of the flat-core
// refactor: after warmup, the cycle loop of every suite machine must not
// allocate at all — oracle on or off, 1 to 64 PEs. The assertion runs
// only without the race detector (raceEnabled), whose instrumentation
// allocates on its own.
func TestSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; run without -race")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			m, err := Build(s)
			if err != nil {
				t.Fatal(err)
			}
			// Warm past page allocation, cache fills and scratch growth.
			if err := m.RunFor(20_000); err != nil {
				t.Fatal(err)
			}
			const chunk = 2_000
			avg := testing.AllocsPerRun(5, func() {
				if err := m.RunFor(chunk); err != nil {
					t.Fatal(err)
				}
			})
			if perCycle := avg / chunk; perCycle != 0 {
				t.Errorf("steady state allocates: %.6f allocs/cycle (%v allocs per %d cycles)",
					perCycle, avg, chunk)
			}
		})
	}
}

// TestRunReportsThroughput smoke-checks the harness itself on a tiny
// scenario so `go test` stays fast while still driving Run end to end.
func TestRunReportsThroughput(t *testing.T) {
	s := Scenario{Name: "smoke", PEs: 2, Protocol: "rb", Oracle: true, Cycles: 5_000, Warmup: 500}
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.CyclesPerSec <= 0 {
		t.Errorf("cycles/sec = %v, want > 0", r.CyclesPerSec)
	}
	if r.RefsRetired == 0 {
		t.Error("no references retired")
	}
	if r.Name != "smoke" || r.Cycles != 5_000 {
		t.Errorf("result misreports its scenario: %+v", r)
	}
}

// ExampleScenarios documents the suite's shape.
func ExampleScenarios() {
	fmt.Println(len(Scenarios()), "scenarios")
	// Output: 12 scenarios
}

// TestProfilerOverhead pins the cost of the online miss-ratio profiler
// (internal/mrc) against the unprofiled cycle loop. The exact number for
// a given machine ships in BENCH_profile.json (`make bench-profile`,
// typically 25-35%: each reference pays two O(log footprint) curve
// updates while the simulated machine itself costs only a few hundred
// nanoseconds per reference); this test is the regression guard that the
// cost stays in that class — a slip past 2x means the hot path grew an
// allocation or lost its O(log) bound.
func TestProfilerOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation distorts timing; run without -race")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	s, err := ScenarioByName("rb-8pe")
	if err != nil {
		t.Fatal(err)
	}
	const warm, run = 20_000, 100_000
	wall := func(profiled bool) (time.Duration, error) {
		m, err := Build(s)
		if err != nil {
			return 0, err
		}
		if profiled {
			mrc.Attach(m)
		}
		if err := m.RunFor(warm); err != nil {
			return 0, err
		}
		start := time.Now()
		if err := m.RunFor(run); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	best := func(profiled bool) time.Duration {
		bestWall := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			w, err := wall(profiled)
			if err != nil {
				t.Fatal(err)
			}
			if rep == 0 || w < bestWall {
				bestWall = w
			}
		}
		return bestWall
	}
	plain := best(false)
	profiled := best(true)
	overhead := float64(profiled-plain) / float64(plain)
	t.Logf("unprofiled %v, profiled %v: %.1f%% overhead", plain, profiled, 100*overhead)
	if overhead > 1.0 {
		t.Errorf("profiler overhead %.1f%% exceeds the 100%% regression bound", 100*overhead)
	}
}
