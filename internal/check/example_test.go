package check_test

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/coherence"
)

// ExampleRun explores the RB product machine for three caches, verifying
// the Section 4 configuration lemma at every reachable state.
func ExampleRun() {
	res, err := check.Run(coherence.RB{}, check.Options{
		Caches:    3,
		Invariant: check.RBLemma,
	})
	if err != nil {
		fmt.Println("violation:", err)
		return
	}
	fmt.Printf("consistent: %d states, %d transitions\n", res.States, res.Transitions)
	// Output:
	// consistent: 38 states, 525 transitions
}
