// Package check mechanizes the Section 4 consistency proof: it builds the
// product machine of N cache automata plus memory for a single address and
// exhaustively explores every interleaving of processor reads, writes,
// Test-and-Sets, and evictions, verifying at each step that
//
//   - every in-cache read (and locked read) observes the latest written
//     value (the theorem: "Each PE always reads the latest value written");
//   - the latest value always survives somewhere (no lost updates);
//   - at most one cache ever claims read-interrupt ownership of a bus read;
//   - the protocol-specific configuration lemma holds (for RB: shared or
//     local configurations only; for RWB: plus the single-F intermediate).
//
// Values are abstracted to a has-latest bit per copy: a write mints a new
// "latest" token; a copy holds it only if it received that write's data
// (directly, by write-through, by broadcast take, or by flush). The
// abstraction is exact for these properties because the protocols never
// inspect data values (the lock-zero test of RMW is explored as a
// nondeterministic branch).
package check

import (
	"fmt"
	"strings"

	"repro/internal/coherence"
)

// LineView is one cache's view of the address in a Snapshot.
type LineView struct {
	Present   bool
	State     coherence.State
	Aux       uint8
	Dirty     bool
	HasLatest bool
}

// Snapshot is a product-machine state offered to invariant predicates.
type Snapshot struct {
	Lines     []LineView
	MemLatest bool
}

// String renders the configuration like the paper's figures: one letter
// per cache plus the memory flag.
func (s Snapshot) String() string {
	var b strings.Builder
	for i, ln := range s.Lines {
		if i > 0 {
			b.WriteByte(' ')
		}
		if !ln.Present {
			b.WriteString("NP")
			continue
		}
		b.WriteString(ln.State.Letter())
		if ln.Dirty {
			b.WriteByte('*')
		}
		if ln.HasLatest {
			b.WriteByte('+')
		}
	}
	if s.MemLatest {
		b.WriteString(" | mem+")
	} else {
		b.WriteString(" | mem-")
	}
	return b.String()
}

// Options configures an exploration.
type Options struct {
	// Caches is N, the number of processing elements. 2..5 is practical.
	Caches int
	// Invariant, when non-nil, is checked at every reachable state.
	// RBLemma and RWBLemma encode the paper's configuration lemmas.
	Invariant func(Snapshot) error
	// MaxStates aborts pathological explorations (0 = 5,000,000).
	MaxStates int
}

// Result summarizes a completed exploration.
type Result struct {
	States      int // distinct reachable product states
	Transitions int // explored (state, action) pairs
}

// Violation is a property failure with the action trace that reaches it.
type Violation struct {
	Property string
	State    Snapshot
	Trace    []string // actions from the initial state
}

func (v *Violation) Error() string {
	return fmt.Sprintf("check: %s at [%s] after %s",
		v.Property, v.State, strings.Join(v.Trace, "; "))
}

// state is the packed product state used as a map key.
type state struct {
	lines [maxCaches]LineView
	n     int
	mem   bool
}

const maxCaches = 6

func (s state) snapshot() Snapshot {
	return Snapshot{Lines: append([]LineView(nil), s.lines[:s.n]...), MemLatest: s.mem}
}

// Run explores the product machine of proto with opt.Caches caches.
func Run(proto coherence.Protocol, opt Options) (Result, error) {
	if opt.Caches < 1 || opt.Caches > maxCaches {
		return Result{}, fmt.Errorf("check: Caches = %d, need 1..%d", opt.Caches, maxCaches)
	}
	maxStates := opt.MaxStates
	if maxStates == 0 {
		maxStates = 5_000_000
	}
	e := &explorer{proto: proto, opt: opt}

	initial := state{n: opt.Caches, mem: true}
	parents := map[state]edge{initial: {}}
	queue := []state{initial}
	res := Result{States: 1}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if opt.Invariant != nil {
			if err := opt.Invariant(cur.snapshot()); err != nil {
				return res, e.violation(parents, cur, err.Error(), "")
			}
		}
		for _, act := range e.actions(cur) {
			res.Transitions++
			next, verr := act.apply(e, cur)
			if verr != "" {
				return res, e.violation(parents, cur, verr, act.name)
			}
			if _, seen := parents[next]; !seen {
				parents[next] = edge{from: cur, action: act.name}
				queue = append(queue, next)
				res.States++
				if res.States > maxStates {
					return res, fmt.Errorf("check: state space exceeds %d states", maxStates)
				}
			}
		}
	}
	return res, nil
}

// edge records how a state was first reached, for counterexample traces.
type edge struct {
	from   state
	action string
}

type explorer struct {
	proto coherence.Protocol
	opt   Options
}

func (e *explorer) violation(parents map[state]edge, at state, prop, lastAction string) error {
	var trace []string
	if lastAction != "" {
		trace = append(trace, lastAction)
	}
	cur := at
	for {
		ed, ok := parents[cur]
		if !ok || ed.action == "" {
			break
		}
		trace = append(trace, ed.action)
		cur = ed.from
	}
	// Reverse into chronological order.
	for i, j := 0, len(trace)-1; i < j; i, j = i+1, j-1 {
		trace[i], trace[j] = trace[j], trace[i]
	}
	return &Violation{Property: prop, State: at.snapshot(), Trace: trace}
}

// action is one explorable step.
type action struct {
	name  string
	apply func(e *explorer, s state) (state, string)
}

// actions enumerates every step from a state: per PE a read, a write, an
// eviction (if present), and both branches of a Test-and-Set.
func (e *explorer) actions(s state) []action {
	var out []action
	for i := 0; i < s.n; i++ {
		i := i
		out = append(out,
			action{fmt.Sprintf("PE%d read", i), func(e *explorer, s state) (state, string) {
				return e.read(s, i)
			}},
			action{fmt.Sprintf("PE%d write", i), func(e *explorer, s state) (state, string) {
				return e.write(s, i)
			}},
			action{fmt.Sprintf("PE%d ts-fail", i), func(e *explorer, s state) (state, string) {
				return e.testSet(s, i, false)
			}},
			action{fmt.Sprintf("PE%d ts-succeed", i), func(e *explorer, s state) (state, string) {
				return e.testSet(s, i, true)
			}},
		)
		if s.lines[i].Present {
			out = append(out, action{fmt.Sprintf("PE%d evict", i), func(e *explorer, s state) (state, string) {
				return e.evict(s, i)
			}})
		}
	}
	return out
}

func (e *explorer) cur(s state, i int) (coherence.State, uint8) {
	if s.lines[i].Present {
		return s.lines[i].State, s.lines[i].Aux
	}
	return coherence.Invalid, 0
}

// applySnoop folds a snoop outcome into cache j, propagating the given
// data-latest flag on TakeData.
func applySnoop(s *state, j int, out coherence.SnoopOutcome, dataLatest bool) {
	ln := &s.lines[j]
	ln.State, ln.Aux = out.Next, out.NextAux
	switch out.Dirty {
	case coherence.DirtySet:
		ln.Dirty = true
	case coherence.DirtyClear:
		ln.Dirty = false
	case coherence.DirtyKeep:
		// The reaction leaves the dirty bit alone.
	}
	if out.TakeData {
		ln.HasLatest = dataLatest
	}
}

// busWrite performs the global effects of a bus write sourced by src (-1
// for none) carrying data whose latest flag is dataLatest: memory takes
// the value; every other present line reacts.
func (e *explorer) busWrite(s *state, src int, dataLatest bool) string {
	s.mem = dataLatest
	for j := 0; j < s.n; j++ {
		if j == src || !s.lines[j].Present {
			continue
		}
		out := e.proto.OnSnoop(s.lines[j].State, s.lines[j].Aux, s.lines[j].Dirty, coherence.SnBusWrite)
		if out.Inhibit {
			return fmt.Sprintf("cache %d inhibits a bus write", j)
		}
		applySnoop(s, j, out, dataLatest)
		if !out.TakeData {
			// The copy did not adopt the newly minted value; whatever it
			// holds is now stale.
			s.lines[j].HasLatest = false
		}
	}
	return ""
}

// busInv broadcasts the RWB invalidate from src.
func (e *explorer) busInv(s *state, src int) string {
	for j := 0; j < s.n; j++ {
		if j == src || !s.lines[j].Present {
			continue
		}
		out := e.proto.OnSnoop(s.lines[j].State, s.lines[j].Aux, s.lines[j].Dirty, coherence.SnBusInv)
		if out.Inhibit {
			return fmt.Sprintf("cache %d inhibits a bus invalidate", j)
		}
		applySnoop(s, j, out, false)
		s.lines[j].HasLatest = false
	}
	return ""
}

// busRead performs a bus read by cache i, including the interrupt-flush-
// retry protocol, and installs the result. The caller chose installState
// via the protocol's read-miss outcome.
func (e *explorer) busRead(s *state, i int) string {
	// Snoop for an interrupting owner.
	owner := -1
	for j := 0; j < s.n; j++ {
		if j == i || !s.lines[j].Present {
			continue
		}
		out := e.proto.OnSnoop(s.lines[j].State, s.lines[j].Aux, s.lines[j].Dirty, coherence.SnBusRead)
		if out.Inhibit {
			if owner != -1 {
				return fmt.Sprintf("caches %d and %d both interrupt a bus read", owner, j)
			}
			owner = j
			// The owner flushes: its value goes to memory; its own state
			// follows the snoop outcome.
			flushLatest := s.lines[j].HasLatest
			applySnoop(s, j, out, flushLatest)
			s.mem = flushLatest
			// The flush is a bus write observed by everyone else
			// (including the original requester).
			for k := 0; k < s.n; k++ {
				if k == j || !s.lines[k].Present {
					continue
				}
				// The flush re-broadcasts the existing latest value, so
				// copies that do not take it simply keep their current
				// staleness status.
				wout := e.proto.OnSnoop(s.lines[k].State, s.lines[k].Aux, s.lines[k].Dirty, coherence.SnBusWrite)
				applySnoop(s, k, wout, flushLatest)
			}
		} else {
			applySnoop(s, j, out, false)
		}
	}
	// The (retried, if interrupted) read is served. It must not be
	// interrupted again.
	if owner != -1 {
		for j := 0; j < s.n; j++ {
			if j == i || !s.lines[j].Present {
				continue
			}
			if out := e.proto.OnSnoop(s.lines[j].State, s.lines[j].Aux, s.lines[j].Dirty, coherence.SnBusRead); out.Inhibit {
				return fmt.Sprintf("cache %d interrupts the retried read", j)
			}
		}
	}
	// Re-evaluate the requester: the flush broadcast may have satisfied
	// it (RWB), in which case the read completes in-cache.
	st, aux := e.cur(*s, i)
	out := e.proto.OnProc(st, aux, coherence.EvRead)
	if out.Action == coherence.ActNone {
		if !s.lines[i].HasLatest {
			return fmt.Sprintf("PE%d read a stale snarfed value", i)
		}
		s.lines[i].State, s.lines[i].Aux = out.Next, out.NextAux
		return ""
	}
	// Memory answers; its value must be the latest.
	if !s.mem {
		return fmt.Sprintf("PE%d bus read returned a stale memory value", i)
	}
	next := out.Next
	if sa, ok := e.proto.(coherence.SharedAware); ok {
		shared := false
		for j := 0; j < s.n; j++ {
			if j != i && s.lines[j].Present && s.lines[j].State != coherence.Invalid {
				shared = true
			}
		}
		next = sa.ReadMissTarget(shared)
	}
	if !out.NoAllocate {
		s.lines[i] = LineView{Present: true, State: next, Aux: out.NextAux, HasLatest: true}
	}
	// Broadcast of the read data to the other caches.
	for j := 0; j < s.n; j++ {
		if j == i || !s.lines[j].Present {
			continue
		}
		rout := e.proto.OnSnoop(s.lines[j].State, s.lines[j].Aux, s.lines[j].Dirty, coherence.SnReadData)
		applySnoop(s, j, rout, true)
	}
	return ""
}

// read explores a CPU read by PE i.
func (e *explorer) read(s state, i int) (state, string) {
	st, aux := e.cur(s, i)
	out := e.proto.OnProc(st, aux, coherence.EvRead)
	if out.Action == coherence.ActNone {
		// In-cache hit: the theorem's check.
		if !s.lines[i].HasLatest {
			return s, fmt.Sprintf("PE%d read-hit observed a stale value", i)
		}
		s.lines[i].State, s.lines[i].Aux = out.Next, out.NextAux
		return s, ""
	}
	if verr := e.busRead(&s, i); verr != "" {
		return s, verr
	}
	return s, ""
}

// write explores a CPU write by PE i: a brand-new latest value is minted.
func (e *explorer) write(s state, i int) (state, string) {
	st, aux := e.cur(s, i)
	out := e.proto.OnProc(st, aux, coherence.EvWrite)
	switch out.Action {
	case coherence.ActNone:
		// Purely local write: every other copy and memory become stale.
		s.lines[i].State, s.lines[i].Aux = out.Next, out.NextAux
		if out.Dirty == coherence.DirtySet {
			s.lines[i].Dirty = true
		} else if out.Dirty == coherence.DirtyClear {
			s.lines[i].Dirty = false
		}
		s.lines[i].HasLatest = true
		s.mem = false
		for j := 0; j < s.n; j++ {
			if j != i {
				s.lines[j].HasLatest = false
			}
		}
		return s, ""
	case coherence.ActWrite:
		if verr := e.busWrite(&s, i, true); verr != "" {
			return s, verr
		}
		if out.NoAllocate {
			if s.lines[i].Present {
				s.lines[i].State, s.lines[i].Aux = out.Next, out.NextAux
				s.lines[i].Dirty = out.Dirty == coherence.DirtySet
				s.lines[i].HasLatest = true
			}
		} else {
			s.lines[i] = LineView{Present: true, State: out.Next, Aux: out.NextAux,
				Dirty: out.Dirty == coherence.DirtySet, HasLatest: true}
		}
		return s, ""
	case coherence.ActInv:
		if verr := e.busInv(&s, i); verr != "" {
			return s, verr
		}
		s.lines[i] = LineView{Present: true, State: out.Next, Aux: out.NextAux,
			Dirty: out.Dirty == coherence.DirtySet, HasLatest: true}
		s.mem = false
		return s, ""
	case coherence.ActReadThenWrite:
		// A write miss that fetches first (Goodman, Illinois): perform
		// the read, then re-dispatch the write against the installed
		// line (Illinois may now complete it locally in Exclusive).
		if verr := e.busRead(&s, i); verr != "" {
			return s, verr
		}
		st2, aux2 := e.cur(s, i)
		if e.proto.OnProc(st2, aux2, coherence.EvWrite).Action == coherence.ActReadThenWrite {
			return s, fmt.Sprintf("PE%d read-then-write did not converge", i)
		}
		return e.write(s, i)
	default:
		// ActRead answers a CPU write only in a broken table; surface it
		// as a property violation rather than exploring nonsense.
		return s, fmt.Sprintf("PE%d write produced unknown action %v", i, out.Action)
	}
}

// testSet explores a Test-and-Set by PE i with the chosen branch (the
// lock-free/lock-held outcome is data-dependent, so both are explored).
func (e *explorer) testSet(s state, i int, succeed bool) (state, string) {
	st, aux := e.cur(s, i)
	if s.lines[i].Present && e.proto.LocalRMW(st) {
		// In-cache atomic: the locked read is the cached value.
		if !s.lines[i].HasLatest {
			return s, fmt.Sprintf("PE%d local Test-and-Set observed a stale value", i)
		}
		if !succeed {
			return s, ""
		}
		return e.write(s, i)
	}
	// Bus RMW: locked read with dirty-owner flush.
	for j := 0; j < s.n; j++ {
		if j == i || !s.lines[j].Present {
			continue
		}
		flush, next, d := e.proto.RMWFlush(s.lines[j].State, s.lines[j].Dirty)
		if flush {
			s.mem = s.lines[j].HasLatest
			s.lines[j].State = next
			if d == coherence.DirtyClear {
				s.lines[j].Dirty = false
			}
		}
	}
	if !s.mem {
		return s, fmt.Sprintf("PE%d locked read observed a stale memory value", i)
	}
	if !succeed {
		return s, ""
	}
	next, nextAux, bcast := e.proto.RMWSuccess(st, aux)
	if bcast == coherence.ActInv {
		if verr := e.busInv(&s, i); verr != "" {
			return s, verr
		}
	} else {
		if verr := e.busWrite(&s, i, true); verr != "" {
			return s, verr
		}
	}
	// The locked transaction always updates memory with the new value.
	s.mem = true
	if next != coherence.Invalid {
		s.lines[i] = LineView{Present: true, State: next, Aux: nextAux, HasLatest: true}
	} else if s.lines[i].Present {
		s.lines[i] = LineView{}
	}
	return s, ""
}

// evict explores reuse of PE i's line frame.
func (e *explorer) evict(s state, i int) (state, string) {
	ln := s.lines[i]
	if e.proto.WritebackOnEvict(ln.State, ln.Dirty) {
		if verr := e.busWrite(&s, i, ln.HasLatest); verr != "" {
			return s, verr
		}
	}
	s.lines[i] = LineView{}
	// No lost updates: the latest value must survive somewhere.
	if !s.mem {
		ok := false
		for j := 0; j < s.n; j++ {
			if s.lines[j].Present && s.lines[j].HasLatest {
				ok = true
				break
			}
		}
		if !ok {
			return s, fmt.Sprintf("PE%d eviction lost the latest value", i)
		}
	}
	return s, ""
}

// RBLemma is the Section 4 lemma for the RB scheme: every reachable
// configuration is either shared (every present copy Readable) or local
// (exactly one Local copy, every other present copy Invalid), and the
// latest value is held by the Local copy if one exists.
func RBLemma(s Snapshot) error {
	return lemma(s, false)
}

// RWBLemma extends RBLemma with the RWB intermediate configuration: one
// FirstWrite copy with every other present copy Readable, all holding the
// latest (broadcast) value, memory current.
func RWBLemma(s Snapshot) error {
	return lemma(s, true)
}

func lemma(s Snapshot, allowF bool) error {
	var locals, firsts, readables, invalids int
	for _, ln := range s.Lines {
		if !ln.Present {
			continue
		}
		switch ln.State {
		case coherence.Local:
			locals++
			if !ln.HasLatest {
				return fmt.Errorf("a Local copy is stale")
			}
		case coherence.FirstWrite:
			firsts++
			if !allowF {
				return fmt.Errorf("FirstWrite state in an RB machine")
			}
			if !ln.HasLatest {
				return fmt.Errorf("a FirstWrite copy is stale")
			}
		case coherence.Readable:
			readables++
			if !ln.HasLatest {
				return fmt.Errorf("a Readable copy is stale")
			}
		case coherence.Invalid:
			invalids++
		default:
			return fmt.Errorf("foreign state %v", ln.State)
		}
	}
	if locals > 1 {
		return fmt.Errorf("%d Local copies", locals)
	}
	if firsts > 1 {
		return fmt.Errorf("%d FirstWrite copies", firsts)
	}
	if locals == 1 && (readables > 0 || firsts > 0) {
		return fmt.Errorf("local configuration with %d Readable and %d FirstWrite copies", readables, firsts)
	}
	if locals == 0 && !s.MemLatest {
		return fmt.Errorf("no Local copy but memory is stale")
	}
	return nil
}
