package check

import (
	"strings"
	"testing"

	"repro/internal/coherence"
)

// TestRBConsistentForNUpTo5 is the machine-checked Section 4 theorem for
// the RB scheme, including the configuration lemma.
func TestRBConsistentForNUpTo5(t *testing.T) {
	for n := 1; n <= 5; n++ {
		res, err := Run(coherence.RB{}, Options{Caches: n, Invariant: RBLemma})
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if res.States < n { // sanity: something was explored
			t.Fatalf("N=%d: only %d states", n, res.States)
		}
		t.Logf("RB N=%d: %d states, %d transitions", n, res.States, res.Transitions)
	}
}

// TestRWBConsistentForNUpTo5 is the same for the RWB scheme (k=2), with
// the intermediate-configuration lemma.
func TestRWBConsistentForNUpTo5(t *testing.T) {
	for n := 1; n <= 5; n++ {
		res, err := Run(coherence.NewRWB(2), Options{Caches: n, Invariant: RWBLemma})
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		t.Logf("RWB N=%d: %d states, %d transitions", n, res.States, res.Transitions)
	}
}

// TestRWBThresholdVariantsConsistent checks the footnote-6 generalization
// for k = 3 and 4.
func TestRWBThresholdVariantsConsistent(t *testing.T) {
	for _, k := range []uint8{3, 4} {
		res, err := Run(coherence.NewRWB(k), Options{Caches: 3, Invariant: RWBLemma})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		t.Logf("RWB k=%d N=3: %d states", k, res.States)
	}
}

// TestBaselinesConsistent: the comparison protocols must also satisfy the
// read-latest theorem (they just do it with more bus traffic).
func TestBaselinesConsistent(t *testing.T) {
	for _, name := range []string{"goodman", "writethrough", "nocache", "illinois"} {
		p, err := coherence.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, rerr := Run(p, Options{Caches: 4})
		if rerr != nil {
			t.Fatalf("%s: %v", name, rerr)
		}
		t.Logf("%s N=4: %d states", name, res.States)
	}
}

// brokenNoInvalidate omits RB's invalidate-on-bus-write: the checker must
// find a stale read.
type brokenNoInvalidate struct{ coherence.RB }

func (brokenNoInvalidate) OnSnoop(s coherence.State, aux uint8, dirty bool, ev coherence.SnoopEvent) coherence.SnoopOutcome {
	if s == coherence.Readable && ev == coherence.SnBusWrite {
		return coherence.SnoopOutcome{Next: coherence.Readable}
	}
	return coherence.RB{}.OnSnoop(s, aux, dirty, ev)
}

func TestCheckerCatchesMissingInvalidate(t *testing.T) {
	_, err := Run(brokenNoInvalidate{}, Options{Caches: 2})
	if err == nil {
		t.Fatal("broken protocol passed")
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if !strings.Contains(v.Property, "stale") {
		t.Fatalf("property = %q, want a staleness violation", v.Property)
	}
	if len(v.Trace) == 0 {
		t.Fatal("no counterexample trace")
	}
	t.Logf("counterexample: %v", v)
}

// brokenNoFlush omits the Local owner's read interrupt: bus reads then
// return stale memory.
type brokenNoFlush struct{ coherence.RB }

func (brokenNoFlush) OnSnoop(s coherence.State, aux uint8, dirty bool, ev coherence.SnoopEvent) coherence.SnoopOutcome {
	if s == coherence.Local && ev == coherence.SnBusRead {
		return coherence.SnoopOutcome{Next: coherence.Local}
	}
	return coherence.RB{}.OnSnoop(s, aux, dirty, ev)
}

func TestCheckerCatchesMissingFlush(t *testing.T) {
	_, err := Run(brokenNoFlush{}, Options{Caches: 2})
	if err == nil {
		t.Fatal("broken protocol passed")
	}
	if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

// brokenNoWriteback drops Local lines on eviction: the latest value is
// lost.
type brokenNoWriteback struct{ coherence.RB }

func (brokenNoWriteback) WritebackOnEvict(s coherence.State, dirty bool) bool { return false }

func TestCheckerCatchesLostWriteback(t *testing.T) {
	_, err := Run(brokenNoWriteback{}, Options{Caches: 2})
	if err == nil {
		t.Fatal("broken protocol passed")
	}
	if !strings.Contains(err.Error(), "lost") && !strings.Contains(err.Error(), "stale") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

// brokenDoubleOwner makes Readable copies inhibit reads too: two owners
// answer one bus read.
type brokenDoubleOwner struct{ coherence.RB }

func (brokenDoubleOwner) OnSnoop(s coherence.State, aux uint8, dirty bool, ev coherence.SnoopEvent) coherence.SnoopOutcome {
	if s == coherence.Readable && ev == coherence.SnBusRead {
		return coherence.SnoopOutcome{Next: coherence.Readable, Inhibit: true}
	}
	return coherence.RB{}.OnSnoop(s, aux, dirty, ev)
}

func TestCheckerCatchesDoubleOwner(t *testing.T) {
	_, err := Run(brokenDoubleOwner{}, Options{Caches: 3})
	if err == nil {
		t.Fatal("broken protocol passed")
	}
	if !strings.Contains(err.Error(), "interrupt") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

// brokenLemma violates the configuration lemma without (immediately)
// violating read consistency: a Local line demoted by a bus write keeps
// state R instead of I under RB (RB caches do not read write data, so the
// copy is stale).
type brokenLemma struct{ coherence.RB }

func (brokenLemma) OnSnoop(s coherence.State, aux uint8, dirty bool, ev coherence.SnoopEvent) coherence.SnoopOutcome {
	if s == coherence.Local && ev == coherence.SnBusWrite {
		return coherence.SnoopOutcome{Next: coherence.Readable}
	}
	return coherence.RB{}.OnSnoop(s, aux, dirty, ev)
}

func TestLemmaInvariantCatchesStaleReadable(t *testing.T) {
	_, err := Run(brokenLemma{}, Options{Caches: 2, Invariant: RBLemma})
	if err == nil {
		t.Fatal("lemma violation not caught")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(coherence.RB{}, Options{Caches: 0}); err == nil {
		t.Error("Caches=0 accepted")
	}
	if _, err := Run(coherence.RB{}, Options{Caches: 7}); err == nil {
		t.Error("Caches=7 accepted")
	}
	if _, err := Run(coherence.RB{}, Options{Caches: 3, MaxStates: 2}); err == nil {
		t.Error("MaxStates=2 not enforced")
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{
		Lines: []LineView{
			{Present: true, State: coherence.Local, Dirty: true, HasLatest: true},
			{},
			{Present: true, State: coherence.Invalid},
		},
		MemLatest: false,
	}
	got := s.String()
	if !strings.Contains(got, "L*+") || !strings.Contains(got, "NP") || !strings.Contains(got, "mem-") {
		t.Fatalf("String() = %q", got)
	}
}

// TestDeterministicExploration: two runs visit identical state counts.
func TestDeterministicExploration(t *testing.T) {
	a, err1 := Run(coherence.NewRWB(2), Options{Caches: 3})
	b, err2 := Run(coherence.NewRWB(2), Options{Caches: 3})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a != b {
		t.Fatalf("nondeterministic exploration: %+v vs %+v", a, b)
	}
}
