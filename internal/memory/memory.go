// Package memory models the shared main memory of the paper's machine: a
// word-addressed store reached only over the shared bus. The paper treats
// memory as "yet another cache (although somewhat special)" in the
// Section 4 product machine — it is the default responder for bus reads
// and the target of every write-through.
//
// The store is dense and page-granular: addresses below the dense limit
// live in lazily allocated fixed-size pages (a slice index, a mask, no
// hashing), so the simulator's steady-state read/write path performs no
// map operations and no allocations once a page exists. Addresses at or
// above the limit — huge or deliberately sparse address spaces, e.g.
// replayed traces with 32-bit addresses — fall back to a sparse map with
// identical semantics. Each page tracks which words were ever stored, so
// Footprint and Snapshot keep the exact "words ever written" meaning the
// map-backed store had.
//
// The package also supports deliberate corruption of stored words, used by
// the Section 8 reliability experiment ("the exploitation of replicated
// values in the various caches to improve the reliability of the memory").
package memory

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/bus"
)

const (
	// pageBits sizes a page at 4096 words (16 KiB of data); small enough
	// that a sparse workload wastes little, large enough that the paper's
	// working sets fit in a handful of pages.
	pageBits  = 12
	pageWords = 1 << pageBits
	pageMask  = pageWords - 1
	// denseLimit bounds the dense page directory to 4096 page pointers
	// (addresses below 16M words). Higher addresses take the sparse path.
	denseLimit = bus.Addr(1) << 24
)

// page is one dense storage unit: the words plus a bitmap of which were
// ever stored (WriteWord, Poke or Corrupt), preserving the "words ever
// written" accounting of Footprint and Snapshot.
// All page state is //phase:any: the store is reached both from bus
// transactions (WriteWord) and from oracle bookkeeping (Poke), which the
// OnResolve hook fires from every phase.
type page struct {
	//phase:any
	words [pageWords]bus.Word
	//phase:any
	written [pageWords / 64]uint64
	//phase:any
	count int // set bits in written
	// gen stamps the store generation (Memory.gen) this page belongs to.
	// A page whose stamp trails the store's counter is logically absent:
	// readers treat it as never touched and the first store of the new
	// generation revives it in place. This is what makes Reset O(1).
	//phase:any
	gen uint64
}

// revive returns a recycled page from an earlier generation to its
// freshly allocated state and stamps it with the current generation.
// Only words recorded in the written bitmap can be nonzero (every store
// path marks), so a sparse page is cleared bitmap-guided; a mostly-full
// page takes one whole-array clear instead.
//
//hotpath:allocfree
func (p *page) revive(gen uint64) {
	if p.count >= pageWords/4 {
		p.words = [pageWords]bus.Word{}
	} else {
		for wi, mask := range p.written {
			for mask != 0 {
				bit := bits.TrailingZeros64(mask)
				mask &^= 1 << bit
				p.words[wi*64+bit] = 0
			}
		}
	}
	p.written = [pageWords / 64]uint64{}
	p.count = 0
	p.gen = gen
}

// mark records that offset o has been stored to.
//
//hotpath:allocfree
func (p *page) mark(o uint32) {
	w, bit := o>>6, uint64(1)<<(o&63)
	if p.written[w]&bit == 0 {
		p.written[w] |= bit
		p.count++
	}
}

// Stats counts memory port activity.
type Stats struct {
	Reads      uint64
	Writes     uint64
	Corrupt    uint64 // words deliberately corrupted via Corrupt
	LostWrites uint64 // bus writes swallowed by the write interceptor
}

// Memory is a dense word-addressed store (with a sparse fallback for
// addresses beyond the dense limit). The zero value is not usable; call
// New. Reads of never-written words return zero, matching a machine
// whose memory is cleared at power-on (and letting the paper's lock
// convention — 0 means free — hold without initialization).
type Memory struct {
	//phase:any
	pages []*page // directory, indexed by addr >> pageBits
	// gen is the store generation; pages stamped with an older value are
	// logically absent (see page.gen). Written only by Reset, between
	// runs — never from phase code — so it carries no phase annotation.
	gen uint64
	//phase:any
	sparse map[bus.Addr]bus.Word // addresses >= denseLimit; nil until needed
	// stats counts bus-port traffic only, so only bus-phase entry points
	// (ReadWord, WriteWord) touch it; Poke and Peek bypass the counters.
	//phase:bus
	stats Stats

	// onWrite, when non-nil, is consulted on every bus-visible WriteWord;
	// returning true swallows the write (a "lost write" fault). Nil — the
	// default — keeps the store path a single pointer test. Poke and
	// Corrupt bypass it: they model harness actions, not bus traffic.
	onWrite func(a bus.Addr, w bus.Word) bool
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{}
}

// pageFor returns the dense page of a, or nil when never touched in the
// current generation (a recycled page from before the last Reset is
// indistinguishable from an absent one until a store revives it).
func (m *Memory) pageFor(a bus.Addr) *page {
	pi := int(a >> pageBits)
	if pi >= len(m.pages) {
		return nil
	}
	if p := m.pages[pi]; p != nil && p.gen == m.gen {
		return p
	}
	return nil
}

// ensurePage returns the dense page of a, allocating it (and growing the
// directory) on first touch. The allocation is one-time per page; the
// steady-state store path never reaches it.
func (m *Memory) ensurePage(a bus.Addr) *page {
	pi := int(a >> pageBits)
	if pi >= len(m.pages) {
		grown := make([]*page, pi+1)
		copy(grown, m.pages)
		m.pages = grown
	}
	p := m.pages[pi]
	if p == nil {
		p = &page{gen: m.gen}
		m.pages[pi] = p
	} else if p.gen != m.gen {
		p.revive(m.gen)
	}
	return p
}

// Reset returns the memory to its freshly constructed state — all words
// unwritten, counters zero, no write interceptor — without releasing the
// dense pages. Stale pages are invalidated by bumping the generation
// counter and lazily revived on their first store, so a reset is O(1)
// in the footprint of the previous run.
func (m *Memory) Reset() {
	m.gen++
	clear(m.sparse)
	m.stats = Stats{}
	m.onWrite = nil
}

// load returns the stored word without touching the port counters.
//
//hotpath:allocfree
func (m *Memory) load(a bus.Addr) bus.Word {
	if a < denseLimit {
		if p := m.pageFor(a); p != nil {
			return p.words[a&pageMask]
		}
		return 0
	}
	return m.sparse[a]
}

// store writes the word without touching the port counters. The dense
// path is allocation-free once a page exists; ensurePage (one-time per
// page) is deliberately left out of the //hotpath:allocfree contract.
//
//hotpath:allocfree
func (m *Memory) store(a bus.Addr, w bus.Word) {
	if a < denseLimit {
		p := m.ensurePage(a)
		p.words[a&pageMask] = w
		p.mark(uint32(a) & pageMask)
		return
	}
	if m.sparse == nil {
		//lint:ignore allocaudit one-time lazy init of the sparse fallback map
		m.sparse = make(map[bus.Addr]bus.Word)
	}
	m.sparse[a] = w
}

// ReadWord implements bus.Memory; memory is reached only over the bus.
//
//phase:bus
//hotpath:allocfree
func (m *Memory) ReadWord(a bus.Addr) bus.Word {
	m.stats.Reads++
	return m.load(a)
}

// WriteWord implements bus.Memory; memory is reached only over the bus.
//
//phase:bus
//hotpath:allocfree
func (m *Memory) WriteWord(a bus.Addr, w bus.Word) {
	m.stats.Writes++
	if m.onWrite != nil && m.onWrite(a, w) {
		m.stats.LostWrites++
		return
	}
	m.store(a, w)
}

// SetWriteInterceptor installs (or, with nil, removes) the lost-write
// fault hook consulted by WriteWord.
func (m *Memory) SetWriteInterceptor(f func(a bus.Addr, w bus.Word) bool) {
	m.onWrite = f
}

// Peek returns the stored word without counting a port access; simulation
// harnesses and the consistency oracle use it.
func (m *Memory) Peek(a bus.Addr) bus.Word { return m.load(a) }

// Poke stores a word without counting a port access; used to preload
// initial images (e.g. all-Readable initial lock values in the Figure 6
// scenarios) and by the consistency oracle, whose OnResolve hook fires
// from every phase.
//
//phase:any
//hotpath:allocfree
func (m *Memory) Poke(a bus.Addr, w bus.Word) { m.store(a, w) }

// Written reports whether the word was ever stored (written, poked or
// corrupted) — the dense store's membership test, used by the machine's
// pristine-value bookkeeping in place of a map lookup.
func (m *Memory) Written(a bus.Addr) bool {
	if a < denseLimit {
		p := m.pageFor(a)
		if p == nil {
			return false
		}
		o := uint32(a) & pageMask
		return p.written[o>>6]&(uint64(1)<<(o&63)) != 0
	}
	_, ok := m.sparse[a]
	return ok
}

// Corrupt flips the given bit mask into the stored word, modeling a memory
// fault. It returns the corrupted value.
func (m *Memory) Corrupt(a bus.Addr, mask bus.Word) bus.Word {
	m.stats.Corrupt++
	w := m.load(a) ^ mask
	m.store(a, w)
	return w
}

// Stats returns a snapshot of the accumulated counters.
func (m *Memory) Stats() Stats { return m.stats }

// Footprint returns the number of distinct words ever written.
func (m *Memory) Footprint() int {
	n := len(m.sparse)
	for _, p := range m.pages {
		if p != nil && p.gen == m.gen {
			n += p.count
		}
	}
	return n
}

// Range calls f for every word ever written, in ascending address order
// (dense pages are walked in place; sparse addresses are sorted first),
// stopping early if f returns false. The sorted order is what keeps
// consumers — final-memory verification, snapshot diffs — deterministic.
func (m *Memory) Range(f func(a bus.Addr, w bus.Word) bool) {
	for pi, p := range m.pages {
		if p == nil || p.gen != m.gen {
			continue
		}
		base := bus.Addr(pi) << pageBits
		for wi, mask := range p.written {
			for mask != 0 {
				bit := bits.TrailingZeros64(mask)
				mask &^= 1 << bit
				o := bus.Addr(wi*64 + bit)
				if !f(base+o, p.words[o]) {
					return
				}
			}
		}
	}
	if len(m.sparse) == 0 {
		return
	}
	addrs := make([]bus.Addr, 0, len(m.sparse))
	for a := range m.sparse {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if !f(a, m.sparse[a]) {
			return
		}
	}
}

// Snapshot copies the current contents; the consistency property tests use
// it to compare final memory images across protocols.
func (m *Memory) Snapshot() map[bus.Addr]bus.Word {
	out := make(map[bus.Addr]bus.Word, m.Footprint())
	m.Range(func(a bus.Addr, w bus.Word) bool {
		out[a] = w
		return true
	})
	return out
}

// String summarizes the memory for diagnostics.
func (m *Memory) String() string {
	return fmt.Sprintf("memory{words=%d reads=%d writes=%d}", m.Footprint(), m.stats.Reads, m.stats.Writes)
}
