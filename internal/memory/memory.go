// Package memory models the shared main memory of the paper's machine: a
// word-addressed store reached only over the shared bus. The paper treats
// memory as "yet another cache (although somewhat special)" in the
// Section 4 product machine — it is the default responder for bus reads
// and the target of every write-through.
//
// The package also supports deliberate corruption of stored words, used by
// the Section 8 reliability experiment ("the exploitation of replicated
// values in the various caches to improve the reliability of the memory").
package memory

import (
	"fmt"

	"repro/internal/bus"
)

// Stats counts memory port activity.
type Stats struct {
	Reads   uint64
	Writes  uint64
	Corrupt uint64 // words deliberately corrupted via Corrupt
}

// Memory is a sparse word-addressed store. The zero value is not usable;
// call New. Reads of never-written words return zero, matching a machine
// whose memory is cleared at power-on (and letting the paper's lock
// convention — 0 means free — hold without initialization).
type Memory struct {
	words map[bus.Addr]bus.Word
	stats Stats
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{words: make(map[bus.Addr]bus.Word)}
}

// ReadWord implements bus.Memory.
func (m *Memory) ReadWord(a bus.Addr) bus.Word {
	m.stats.Reads++
	return m.words[a]
}

// WriteWord implements bus.Memory.
func (m *Memory) WriteWord(a bus.Addr, w bus.Word) {
	m.stats.Writes++
	m.words[a] = w
}

// Peek returns the stored word without counting a port access; simulation
// harnesses and the consistency oracle use it.
func (m *Memory) Peek(a bus.Addr) bus.Word { return m.words[a] }

// Poke stores a word without counting a port access; used to preload
// initial images (e.g. all-Readable initial lock values in the Figure 6
// scenarios).
func (m *Memory) Poke(a bus.Addr, w bus.Word) { m.words[a] = w }

// Corrupt flips the given bit mask into the stored word, modeling a memory
// fault. It returns the corrupted value.
func (m *Memory) Corrupt(a bus.Addr, mask bus.Word) bus.Word {
	m.stats.Corrupt++
	m.words[a] ^= mask
	return m.words[a]
}

// Stats returns a snapshot of the accumulated counters.
func (m *Memory) Stats() Stats { return m.stats }

// Footprint returns the number of distinct words ever written.
func (m *Memory) Footprint() int { return len(m.words) }

// Snapshot copies the current contents; the consistency property tests use
// it to compare final memory images across protocols.
func (m *Memory) Snapshot() map[bus.Addr]bus.Word {
	out := make(map[bus.Addr]bus.Word, len(m.words))
	for a, w := range m.words {
		out[a] = w
	}
	return out
}

// String summarizes the memory for diagnostics.
func (m *Memory) String() string {
	return fmt.Sprintf("memory{words=%d reads=%d writes=%d}", len(m.words), m.stats.Reads, m.stats.Writes)
}
