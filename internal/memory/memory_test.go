package memory

import (
	"testing"
	"testing/quick"

	"repro/internal/bus"
)

func TestZeroFill(t *testing.T) {
	m := New()
	if got := m.ReadWord(123); got != 0 {
		t.Fatalf("unwritten word = %d, want 0", got)
	}
}

func TestReadBack(t *testing.T) {
	m := New()
	m.WriteWord(7, 42)
	if got := m.ReadWord(7); got != 42 {
		t.Fatalf("ReadWord = %d, want 42", got)
	}
}

func TestStatsCountPortAccesses(t *testing.T) {
	m := New()
	m.WriteWord(1, 1)
	m.WriteWord(2, 2)
	m.ReadWord(1)
	st := m.Stats()
	if st.Reads != 1 || st.Writes != 2 {
		t.Fatalf("stats = %+v, want 1 read 2 writes", st)
	}
}

func TestPeekPokeAreUncounted(t *testing.T) {
	m := New()
	m.Poke(5, 99)
	if m.Peek(5) != 99 {
		t.Fatal("Poke/Peek round-trip failed")
	}
	st := m.Stats()
	if st.Reads != 0 || st.Writes != 0 {
		t.Fatalf("Peek/Poke counted as port accesses: %+v", st)
	}
}

func TestCorruptFlipsMask(t *testing.T) {
	m := New()
	m.Poke(3, 0b1010)
	got := m.Corrupt(3, 0b0110)
	if got != 0b1100 {
		t.Fatalf("Corrupt = %b, want 1100", got)
	}
	if m.Peek(3) != 0b1100 {
		t.Fatal("corruption not stored")
	}
	if m.Stats().Corrupt != 1 {
		t.Fatal("corruption not counted")
	}
}

func TestFootprintAndSnapshot(t *testing.T) {
	m := New()
	m.WriteWord(1, 10)
	m.WriteWord(2, 20)
	m.WriteWord(1, 11)
	if m.Footprint() != 2 {
		t.Fatalf("Footprint = %d, want 2", m.Footprint())
	}
	snap := m.Snapshot()
	if len(snap) != 2 || snap[1] != 11 || snap[2] != 20 {
		t.Fatalf("Snapshot = %v", snap)
	}
	// The snapshot is a copy.
	snap[1] = 0
	if m.Peek(1) != 11 {
		t.Fatal("Snapshot aliases live storage")
	}
}

func TestStringSummary(t *testing.T) {
	m := New()
	m.WriteWord(1, 1)
	if s := m.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestImplementsBusMemory(t *testing.T) {
	var _ bus.Memory = New()
}

// Property: last write wins for any sequence of writes.
func TestQuickLastWriteWins(t *testing.T) {
	f := func(ops []struct {
		A uint8 // small address space to force overwrites
		W uint32
	}) bool {
		m := New()
		last := make(map[bus.Addr]bus.Word)
		for _, op := range ops {
			a := bus.Addr(op.A)
			w := bus.Word(op.W)
			m.WriteWord(a, w)
			last[a] = w
		}
		for a, w := range last {
			if m.ReadWord(a) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
