package config

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
)

func TestLoadDefaults(t *testing.T) {
	s, err := Load(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, agents, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Protocol.Name() != "rb" || len(agents) != 4 || cfg.CacheLines != 1024 {
		t.Fatalf("defaults: proto=%s agents=%d lines=%d", cfg.Protocol.Name(), len(agents), cfg.CacheLines)
	}
	if !cfg.CheckConsistency || cfg.WatchdogCycles != 1_000_000 {
		t.Fatalf("defaults: check=%v watchdog=%d", cfg.CheckConsistency, cfg.WatchdogCycles)
	}
	if s.MaxCyclesOrDefault() != 100_000_000 {
		t.Fatalf("MaxCycles = %d", s.MaxCyclesOrDefault())
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"protocl": "rb"}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
}

func TestLoadRejectsBadValues(t *testing.T) {
	for _, bad := range []string{
		`{"protocol": "mesi"}`,
		`{"pes": -1}`,
		`{"workload": {"kind": "frobnicate"}}`,
		`{"workload": {"kind": "random", "write_frac": 2}}`,
		`not json`,
	} {
		if _, err := Load(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestSaveRoundTrip(t *testing.T) {
	s, err := Load(strings.NewReader(`{
		"protocol": "rwb", "rwb_threshold": 3, "pes": 6,
		"cache_lines": 256, "buses": 2, "seed": 9,
		"workload": {"kind": "spinlock-tts", "iterations": 7}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *s2 != *s {
		t.Fatalf("round trip changed spec: %+v vs %+v", s2, s)
	}
}

func TestBuildRWBThreshold(t *testing.T) {
	s, err := Load(strings.NewReader(`{"protocol": "rwb", "rwb_threshold": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Protocol.Name() != "rwb" {
		t.Fatal("wrong protocol")
	}
}

// TestEveryWorkloadKindBuildsAndRuns: each kind assembles and a short run
// completes under the oracle.
func TestEveryWorkloadKindBuildsAndRuns(t *testing.T) {
	kinds := []string{"pde", "qsort", "spinlock-ts", "spinlock-tts",
		"arrayinit", "hotspot", "random", "producer-consumer", "barrier"}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			spec := &RunSpec{
				PEs:      2,
				Workload: WorkloadSpec{Kind: kind, Refs: 50, Iterations: 3, Rounds: 2},
			}
			cfg, agents, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			m, err := machine.New(cfg, agents)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(2_000_000); err != nil {
				t.Fatal(err)
			}
			if !m.Done() {
				t.Fatal("did not finish")
			}
		})
	}
}

func TestDisables(t *testing.T) {
	s, err := Load(strings.NewReader(`{"disable_check": true, "disable_watchdog": true}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CheckConsistency || cfg.WatchdogCycles != 0 {
		t.Fatalf("disables ignored: %+v", cfg)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/spec.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
