// Package config defines the JSON run specification consumed by
// cmd/mimdsim -config: a complete, reproducible description of a
// simulation — machine geometry, protocol, workload, seed — that can be
// checked into an experiments directory and rerun bit-identically.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/workload"
)

// RunSpec is one simulation run.
type RunSpec struct {
	// Protocol is the coherence scheme name ("rb", "rwb", ...).
	Protocol string `json:"protocol"`
	// RWBThreshold is the RWB write-streak k (default 2; ignored for
	// other protocols).
	RWBThreshold uint8 `json:"rwb_threshold,omitempty"`
	// PEs is the processor count.
	PEs int `json:"pes"`
	// CacheLines per PE (default 1024); CacheWays defaults to 1.
	CacheLines int `json:"cache_lines,omitempty"`
	CacheWays  int `json:"cache_ways,omitempty"`
	// Buses is the interleaved bus count (default 1).
	Buses int `json:"buses,omitempty"`
	// MemLatency is extra bus-hold cycles per memory access.
	MemLatency int `json:"mem_latency,omitempty"`
	// Seed drives the workload generators (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// MaxCycles bounds the run (default 100M).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// DisableCheck turns the consistency oracle off.
	DisableCheck bool `json:"disable_check,omitempty"`
	// TwoPhaseRMW selects the locked-bus Test-and-Set realization.
	TwoPhaseRMW bool `json:"two_phase_rmw,omitempty"`
	// WatchdogCycles aborts on a stalled PE (default 1M; 0 keeps the
	// default — use -1 semantics via DisableWatchdog).
	WatchdogCycles  uint64 `json:"watchdog_cycles,omitempty"`
	DisableWatchdog bool   `json:"disable_watchdog,omitempty"`
	// Workload selects the per-PE programs.
	Workload WorkloadSpec `json:"workload"`
}

// WorkloadSpec selects and parameterizes the generators.
type WorkloadSpec struct {
	// Kind: pde, qsort, spinlock-ts, spinlock-tts, arrayinit, hotspot,
	// random, producer-consumer, barrier.
	Kind string `json:"kind"`
	// Refs is the per-PE reference/op count (generator kinds).
	Refs int `json:"refs,omitempty"`
	// Iterations for spinlock kinds; Rounds for barrier.
	Iterations int `json:"iterations,omitempty"`
	Rounds     int `json:"rounds,omitempty"`
	// WriteFrac / TSFrac for the random kind.
	WriteFrac float64 `json:"write_frac,omitempty"`
	TSFrac    float64 `json:"ts_frac,omitempty"`
	// Words is the random kind's address-window size.
	Words int `json:"words,omitempty"`
}

// Load parses a RunSpec from JSON, rejecting unknown fields (a typoed key
// silently changing an experiment is worse than an error).
func Load(r io.Reader) (*RunSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s RunSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a RunSpec from a file.
func LoadFile(path string) (*RunSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Save writes the spec as indented JSON.
func (s *RunSpec) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// withDefaults fills the optional fields.
func (s RunSpec) withDefaults() RunSpec {
	if s.Protocol == "" {
		s.Protocol = "rb"
	}
	if s.PEs == 0 {
		s.PEs = 4
	}
	if s.CacheLines == 0 {
		s.CacheLines = 1024
	}
	if s.CacheWays == 0 {
		s.CacheWays = 1
	}
	if s.Buses == 0 {
		s.Buses = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.MaxCycles == 0 {
		s.MaxCycles = 100_000_000
	}
	if s.WatchdogCycles == 0 {
		s.WatchdogCycles = 1_000_000
	}
	if s.Workload.Kind == "" {
		s.Workload.Kind = "pde"
	}
	if s.Workload.Refs == 0 {
		s.Workload.Refs = 20000
	}
	if s.Workload.Iterations == 0 {
		s.Workload.Iterations = 50
	}
	if s.Workload.Rounds == 0 {
		s.Workload.Rounds = 20
	}
	if s.Workload.Words == 0 {
		s.Workload.Words = 256
	}
	if s.Workload.WriteFrac == 0 {
		s.Workload.WriteFrac = 0.3
	}
	return s
}

// Validate reports configuration errors.
func (s *RunSpec) Validate() error {
	d := s.withDefaults()
	if _, err := coherence.ByName(d.Protocol); err != nil {
		return err
	}
	if d.PEs < 1 {
		return fmt.Errorf("config: pes = %d", d.PEs)
	}
	switch d.Workload.Kind {
	case "pde", "qsort", "spinlock-ts", "spinlock-tts", "arrayinit",
		"hotspot", "random", "producer-consumer", "barrier":
	default:
		return fmt.Errorf("config: unknown workload kind %q", d.Workload.Kind)
	}
	if d.Workload.WriteFrac < 0 || d.Workload.WriteFrac > 1 ||
		d.Workload.TSFrac < 0 || d.Workload.TSFrac > 1 {
		return fmt.Errorf("config: workload fractions out of range")
	}
	return nil
}

// Build assembles the machine configuration and agents the spec
// describes.
func (s *RunSpec) Build() (machine.Config, []workload.Agent, error) {
	if err := s.Validate(); err != nil {
		return machine.Config{}, nil, err
	}
	d := s.withDefaults()

	var proto coherence.Protocol
	var err error
	if d.Protocol == "rwb" && d.RWBThreshold > 2 {
		proto = coherence.NewRWB(d.RWBThreshold)
	} else if proto, err = coherence.ByName(d.Protocol); err != nil {
		return machine.Config{}, nil, err
	}

	watchdog := d.WatchdogCycles
	if d.DisableWatchdog {
		watchdog = 0
	}
	cfg := machine.Config{
		Protocol:         proto,
		CacheLines:       d.CacheLines,
		CacheWays:        d.CacheWays,
		Buses:            d.Buses,
		MemLatency:       d.MemLatency,
		CheckConsistency: !d.DisableCheck,
		TwoPhaseRMW:      d.TwoPhaseRMW,
		WatchdogCycles:   watchdog,
	}

	agents, err := d.buildAgents()
	if err != nil {
		return machine.Config{}, nil, err
	}
	return cfg, agents, nil
}

func (d RunSpec) buildAgents() ([]workload.Agent, error) {
	agents := make([]workload.Agent, d.PEs)
	layout := workload.DefaultLayout()
	w := d.Workload
	for i := range agents {
		switch w.Kind {
		case "pde", "qsort":
			prof := workload.PDEProfile()
			if w.Kind == "qsort" {
				prof = workload.QuicksortProfile()
			}
			app, err := workload.NewApp(prof, layout, i, d.Seed, w.Refs)
			if err != nil {
				return nil, err
			}
			agents[i] = app
		case "spinlock-ts", "spinlock-tts":
			strat := workload.StrategyTS
			if w.Kind == "spinlock-tts" {
				strat = workload.StrategyTTS
			}
			s, err := workload.NewSpinlock(workload.SpinlockConfig{
				Lock: 100, Strategy: strat, Iterations: w.Iterations,
				CriticalReads: 3, CriticalWrites: 3,
				GuardedBase: 200, GuardedWords: 8,
				Seed: d.Seed + uint64(i),
			})
			if err != nil {
				return nil, err
			}
			agents[i] = s
		case "arrayinit":
			agents[i] = workload.NewArrayInit(bus.Addr(i*w.Refs), w.Refs)
		case "hotspot":
			agents[i] = workload.NewHotspot(100, w.Refs)
		case "random":
			agents[i] = workload.NewRandom(0, w.Words, w.Refs, w.WriteFrac, w.TSFrac, d.Seed+uint64(i))
		case "producer-consumer":
			if i == 0 {
				agents[i] = workload.NewProducer(10, 11, w.Refs, 20)
			} else {
				agents[i] = workload.NewConsumer(10, 11, w.Refs)
			}
		case "barrier":
			b, err := workload.NewBarrier(workload.BarrierConfig{
				Lock: 0, Counter: 1, Sense: 2, Progress: 16,
				Participants: d.PEs, Rounds: w.Rounds,
				WorkCycles: 1 + 7*i,
				ID:         i,
			})
			if err != nil {
				return nil, err
			}
			agents[i] = b
		default:
			return nil, fmt.Errorf("config: unknown workload kind %q", w.Kind)
		}
	}
	return agents, nil
}

// MaxCyclesOrDefault returns the run's cycle budget.
func (s *RunSpec) MaxCyclesOrDefault() uint64 {
	return s.withDefaults().MaxCycles
}
