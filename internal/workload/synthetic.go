package workload

import (
	"fmt"
	"math"

	"repro/internal/bus"
	"repro/internal/coherence"
)

// Layout assigns address segments: one shared segment common to all PEs and
// disjoint per-PE code and local-data segments, mirroring the data classes
// of Section 2 ("local ... and shared", subdivided into read-only code and
// read/write).
type Layout struct {
	SharedBase  bus.Addr
	SharedWords int
	// Per-PE segments start at PEBase + PE*PEStride.
	PEBase   bus.Addr
	PEStride bus.Addr
	// Within a PE's region, code occupies [0, CodeWords) and local data
	// [CodeOffset, CodeOffset+LocalWords).
	CodeWords  int
	CodeOffset bus.Addr
	LocalWords int
}

// DefaultLayout spaces segments widely enough that no two classes collide
// for up to 1024 PEs with 64K-word footprints each.
func DefaultLayout() Layout {
	return Layout{
		SharedBase:  0,
		SharedWords: 4096,
		PEBase:      1 << 16,
		PEStride:    1 << 17,
		CodeWords:   8192,
		// Offset the local segment by an extra 1024 words so the two
		// sequential streams start in different halves of a direct-mapped
		// cache instead of aliasing set-for-set.
		CodeOffset: 1<<16 + 1024,
		LocalWords: 8192,
	}
}

// CodeBase returns PE pe's code segment base.
func (l Layout) CodeBase(pe int) bus.Addr { return l.PEBase + bus.Addr(pe)*l.PEStride }

// LocalBase returns PE pe's local-data segment base.
func (l Layout) LocalBase(pe int) bus.Addr {
	return l.PEBase + bus.Addr(pe)*l.PEStride + l.CodeOffset
}

// AppProfile parameterizes a synthetic application. The fractions are of
// all memory references, matching the columns of Table 1-1: SharedFrac is
// "Shared Read/Write", LocalWriteFrac is "Local Writes", and the remainder
// is reads of code and local data whose hit behavior the cache determines.
type AppProfile struct {
	Name string
	// SharedFrac of references touch the shared segment (column 4).
	SharedFrac float64
	// SharedWriteFrac of the shared references are writes; the rest read.
	SharedWriteFrac float64
	// LocalWriteFrac of references are writes to local data (column 3).
	LocalWriteFrac float64
	// CodeFrac of the remaining (read) references fetch code; the rest
	// read local data.
	CodeFrac float64
	// Locality of the read stream: HotFrac of reads hit one of the HotSet
	// most recent addresses; MidFrac draw a reuse depth log-uniformly in
	// [1, MidDepth] (the working set that fits the larger cache sizes);
	// the rest draw log-uniformly in [1, MaxDepth], touching a fresh
	// address when the depth exceeds the number of addresses seen so far.
	HotFrac  float64
	HotSet   int
	MidFrac  float64
	MidDepth int
	MaxDepth int
}

// Validate reports configuration errors.
func (p AppProfile) Validate() error {
	if p.SharedFrac < 0 || p.LocalWriteFrac < 0 || p.SharedFrac+p.LocalWriteFrac > 1 {
		return fmt.Errorf("workload: %s: reference fractions exceed 1", p.Name)
	}
	if p.CodeFrac < 0 || p.CodeFrac > 1 || p.SharedWriteFrac < 0 || p.SharedWriteFrac > 1 {
		return fmt.Errorf("workload: %s: fractions out of range", p.Name)
	}
	if p.HotFrac < 0 || p.HotFrac > 1 || p.HotSet < 1 || p.MaxDepth < 2 {
		return fmt.Errorf("workload: %s: locality parameters out of range", p.Name)
	}
	if p.MidFrac < 0 || p.HotFrac+p.MidFrac > 1 || (p.MidFrac > 0 && p.MidDepth < 2) {
		return fmt.Errorf("workload: %s: mid-range locality parameters out of range", p.Name)
	}
	return nil
}

// PDEProfile models the first application of Table 1-1: 5% shared
// references and 8% local writes, with locality calibrated so the
// read-miss ratio falls from the mid-20s to single digits as the cache
// grows from 256 to 2048 words.
func PDEProfile() AppProfile {
	return AppProfile{
		Name:            "pde",
		SharedFrac:      0.05,
		SharedWriteFrac: 0.3,
		LocalWriteFrac:  0.08,
		CodeFrac:        0.6,
		HotFrac:         0.64,
		HotSet:          16,
		MidFrac:         0.30,
		MidDepth:        550,
		MaxDepth:        60000,
	}
}

// QuicksortProfile models the second application: 10% shared references
// and 6.7% local writes.
func QuicksortProfile() AppProfile {
	return AppProfile{
		Name:            "qsort",
		SharedFrac:      0.10,
		SharedWriteFrac: 0.3,
		LocalWriteFrac:  0.067,
		CodeFrac:        0.6,
		HotFrac:         0.64,
		HotSet:          16,
		MidFrac:         0.30,
		MidDepth:        520,
		MaxDepth:        50000,
	}
}

// stackModel generates a reference stream with an LRU-stack-distance
// locality profile over a bounded segment.
type stackModel struct {
	rng      *RNG
	base     bus.Addr
	size     int
	stack    []bus.Addr // most recently used first
	nextNew  int        // allocation cursor within the segment
	hotFrac  float64
	hotSet   int
	midFrac  float64
	midDepth int
	logMax   float64
}

func newStackModel(rng *RNG, base bus.Addr, size int, p AppProfile) *stackModel {
	m := &stackModel{
		rng: rng, base: base, size: size,
		hotFrac: p.HotFrac, hotSet: p.HotSet,
		midFrac: p.MidFrac,
		logMax:  math.Log(float64(p.MaxDepth)),
	}
	m.midDepth = p.MidDepth
	// The stack only gains an entry when the sampled depth reaches its
	// current length, and every sampled depth is below MaxDepth (plus a
	// float-rounding margin), so this capacity makes promote append-safe
	// without ever reallocating mid-run — the reference stream must not
	// be the simulator's steady-state allocation source.
	m.stack = make([]bus.Addr, 0, p.MaxDepth+2)
	return m
}

// reset empties the LRU history and rewinds the allocation cursor,
// reusing the preallocated stack backing — this is the batch runner's
// whole win: the MaxDepth-sized backing array is the workload layer's
// dominant allocation, and reset never touches it.
func (m *stackModel) reset() {
	m.stack = m.stack[:0]
	m.nextNew = 0
}

// next returns the next address of the stream.
func (m *stackModel) next() bus.Addr {
	var depth int
	u := m.rng.Float64()
	switch {
	case len(m.stack) == 0:
		depth = 0
	case u < m.hotFrac:
		limit := m.hotSet
		if limit > len(m.stack) {
			limit = len(m.stack)
		}
		depth = m.rng.Intn(limit)
	case u < m.hotFrac+m.midFrac:
		// Uniform depth across the mid working set: the mass the larger
		// cache sizes capture, giving the knee of the Table 1-1 curve.
		depth = 1 + m.rng.Intn(m.midDepth)
	default:
		// Log-uniform depth in [1, maxDepth): constant probability mass
		// per doubling, giving the halving miss curve of Table 1-1.
		depth = int(math.Exp(m.rng.Float64() * m.logMax))
	}
	if depth >= len(m.stack) {
		// Deeper than history: reference a fresh address (a compulsory
		// miss until the segment wraps).
		a := m.base + bus.Addr(m.nextNew%m.size)
		m.nextNew++
		m.promote(a, len(m.stack))
		return a
	}
	a := m.stack[depth]
	m.promote(a, depth)
	return a
}

// promote moves the address at the given stack position to the front,
// inserting it if position == len(stack).
func (m *stackModel) promote(a bus.Addr, pos int) {
	if pos == len(m.stack) {
		m.stack = append(m.stack, 0)
	}
	copy(m.stack[1:pos+1], m.stack[:pos])
	m.stack[0] = a
}

// App is the synthetic-application agent behind the Table 1-1
// reproduction. Each instance generates one PE's reference stream:
// code fetches and local-data reads with stack locality, write-through
// local writes, and uniformly distributed shared references.
type App struct {
	profile AppProfile
	layout  Layout
	pe      int
	rng     *RNG
	code    *stackModel
	local   *stackModel
	refs    int
	maxRefs int // 0 = unbounded
	seq     bus.Word
}

// NewApp builds the agent for one PE. maxRefs bounds the stream (0 means
// run forever); seeds are derived from seed and the PE index.
func NewApp(profile AppProfile, layout Layout, pe int, seed uint64, maxRefs int) (*App, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if layout.SharedWords < 1 || layout.CodeWords < 1 || layout.LocalWords < 1 {
		return nil, fmt.Errorf("workload: layout has empty segments")
	}
	rng := NewRNG(seed*1e9 + uint64(pe)*7919)
	return &App{
		profile: profile,
		layout:  layout,
		pe:      pe,
		rng:     rng,
		code:    newStackModel(rng, layout.CodeBase(pe), layout.CodeWords, profile),
		local:   newStackModel(rng, layout.LocalBase(pe), layout.LocalWords, profile),
		maxRefs: maxRefs,
	}, nil
}

// Reseed implements Reseeder: the agent re-derives its per-PE RNG stream
// from the base seed exactly as NewApp does and rewinds both locality
// models onto their existing backing, so a recycled App emits the same
// reference stream a freshly constructed one would.
func (a *App) Reseed(seed uint64) {
	a.rng.Reseed(seed*1e9 + uint64(a.pe)*7919)
	a.code.reset()
	a.local.reset()
	a.refs = 0
	a.seq = 0
}

// MustApp is NewApp panicking on error.
func MustApp(profile AppProfile, layout Layout, pe int, seed uint64, maxRefs int) *App {
	a, err := NewApp(profile, layout, pe, seed, maxRefs)
	if err != nil {
		panic(err)
	}
	return a
}

// Next implements Agent.
func (a *App) Next(Result) Op {
	if a.maxRefs > 0 && a.refs >= a.maxRefs {
		return Halt()
	}
	a.refs++
	a.seq++
	u := a.rng.Float64()
	switch {
	case u < a.profile.SharedFrac:
		addr := a.layout.SharedBase + bus.Addr(a.rng.Intn(a.layout.SharedWords))
		if a.rng.Float64() < a.profile.SharedWriteFrac {
			return Write(addr, a.seq, coherence.ClassShared)
		}
		return Read(addr, coherence.ClassShared)
	case u < a.profile.SharedFrac+a.profile.LocalWriteFrac:
		return Write(a.local.next(), a.seq, coherence.ClassLocal)
	default:
		if a.rng.Float64() < a.profile.CodeFrac {
			return Read(a.code.next(), coherence.ClassCode)
		}
		return Read(a.local.next(), coherence.ClassLocal)
	}
}

// Refs returns the number of references generated so far.
func (a *App) Refs() int { return a.refs }
