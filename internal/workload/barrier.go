package workload

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/coherence"
)

// This file builds the classic centralized synchronization constructs of
// the period on top of Test-and-Set / Test-and-Test-and-Set — the "many
// types of synchronization primitives" Section 6 alludes to. They are the
// workloads where the paper's caching of shared data pays off: the barrier
// sense word and the semaphore count are written by one PE and then read
// by all the others (the Section 5 "cyclical pattern").

// BarrierConfig parameterizes a sense-reversing centralized barrier.
type BarrierConfig struct {
	// Lock guards the arrival counter.
	Lock bus.Addr
	// Counter counts arrivals in the current round.
	Counter bus.Addr
	// Sense is the word everyone spins on; it flips each round.
	Sense bus.Addr
	// Progress is the base of one word per participant where each PE
	// publishes the round it is entering — used to verify barrier
	// semantics (nobody leaves round r before everyone entered it).
	Progress bus.Addr
	// Participants is the number of PEs meeting at the barrier.
	Participants int
	// Rounds to execute before halting.
	Rounds int
	// WorkCycles of compute at the start of each round (the parallel
	// phase the barrier separates).
	WorkCycles int
	// ID is this agent's index in [0, Participants).
	ID int
}

func (c BarrierConfig) validate() error {
	if c.Participants < 1 || c.Rounds < 1 {
		return fmt.Errorf("workload: barrier needs participants and rounds")
	}
	if c.ID < 0 || c.ID >= c.Participants {
		return fmt.Errorf("workload: barrier ID %d out of range", c.ID)
	}
	if c.WorkCycles < 0 {
		return fmt.Errorf("workload: negative work cycles")
	}
	return nil
}

// barrierPhase names the operation the agent issued last.
type barrierPhase uint8

const (
	bStart barrierPhase = iota
	bWorked
	bPublished
	bTestedLock
	bTSedLock
	bReadCounter
	bWroteIncrement
	bWroteReset
	bWroteSense
	bReleasedWaiter
	bSpinningSense
	bVerifying
	bHalted
)

// Barrier is one participant of a sense-reversing centralized barrier.
// Arrival is counted under a TTS-acquired lock; the last arriver resets
// the counter and flips the sense word, which everyone else spins on — in
// their caches, under the paper's schemes.
type Barrier struct {
	cfg   BarrierConfig
	phase barrierPhase

	round     int      // completed rounds
	count     bus.Word // counter value read under the lock
	verifyPE  int
	verifyErr error
	// lastIssuedProgressRead distinguishes the verification loop's first
	// entry (whose prev carries an unrelated result) from later entries.
	lastIssuedProgressRead bool
}

// NewBarrier builds one participant.
func NewBarrier(cfg BarrierConfig) (*Barrier, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Barrier{cfg: cfg}, nil
}

// MustBarrier is NewBarrier panicking on error.
func MustBarrier(cfg BarrierConfig) *Barrier {
	b, err := NewBarrier(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Rounds returns the completed round count.
func (b *Barrier) Rounds() int { return b.round }

// Err returns the first barrier-semantics violation this agent observed
// (a peer still in an earlier round after the barrier opened), or nil.
func (b *Barrier) Err() error { return b.verifyErr }

// targetSense is the sense value that opens round b.round (0-indexed):
// the sense word starts at 0 and the last arriver of round r writes
// (r+1) & 1.
func (b *Barrier) targetSense() bus.Word { return bus.Word((b.round + 1) & 1) }

// Next implements Agent.
func (b *Barrier) Next(prev Result) Op {
	switch b.phase {
	case bStart:
		if b.round >= b.cfg.Rounds {
			b.phase = bHalted
			return Halt()
		}
		b.phase = bWorked
		if b.cfg.WorkCycles > 0 {
			return Compute(b.cfg.WorkCycles)
		}
		return b.Next(prev) // no parallel phase configured
	case bWorked:
		// Publish the round we are entering (1-based).
		b.phase = bPublished
		return Write(b.cfg.Progress+bus.Addr(b.cfg.ID), bus.Word(b.round+1), coherence.ClassShared)
	case bPublished:
		b.phase = bTestedLock
		return Read(b.cfg.Lock, coherence.ClassShared)
	case bTestedLock:
		if prev.Value != 0 {
			return Read(b.cfg.Lock, coherence.ClassShared) // spin in cache
		}
		b.phase = bTSedLock
		return TestSet(b.cfg.Lock, 1)
	case bTSedLock:
		if prev.Value != 0 {
			b.phase = bTestedLock
			return Read(b.cfg.Lock, coherence.ClassShared)
		}
		b.phase = bReadCounter
		return Read(b.cfg.Counter, coherence.ClassShared)
	case bReadCounter:
		b.count = prev.Value
		if int(b.count)+1 == b.cfg.Participants {
			// Last arriver: reset the counter for the next round.
			b.phase = bWroteReset
			return Write(b.cfg.Counter, 0, coherence.ClassShared)
		}
		b.phase = bWroteIncrement
		return Write(b.cfg.Counter, b.count+1, coherence.ClassShared)
	case bWroteReset:
		// Open the barrier: flip the sense everyone is spinning on.
		b.phase = bWroteSense
		return Write(b.cfg.Sense, b.targetSense(), coherence.ClassShared)
	case bWroteSense:
		// Release the lock; the round is complete for the last arriver.
		b.round++
		b.phase = bVerifying
		b.verifyPE = 0
		return Write(b.cfg.Lock, 0, coherence.ClassShared)
	case bWroteIncrement:
		b.phase = bReleasedWaiter
		return Write(b.cfg.Lock, 0, coherence.ClassShared)
	case bReleasedWaiter:
		b.phase = bSpinningSense
		return Read(b.cfg.Sense, coherence.ClassShared)
	case bSpinningSense:
		if prev.Value != b.targetSense() {
			return Read(b.cfg.Sense, coherence.ClassShared) // spin in cache
		}
		b.round++
		b.phase = bVerifying
		b.verifyPE = 0
		b.lastIssuedProgressRead = true
		return Read(b.cfg.Progress+bus.Addr(b.verifyPE), coherence.ClassShared)
	case bVerifying:
		// After passing the barrier, every peer must have entered (at
		// least) the round we just completed. The first call after
		// bWroteSense carries the lock release's result, not a progress
		// value; detect that by verifyPE == 0 having issued no read yet.
		if b.lastIssuedProgressRead {
			if int(prev.Value) < b.round && b.verifyErr == nil {
				b.verifyErr = fmt.Errorf("workload: barrier violation: PE%d saw peer %d at round %d after completing round %d",
					b.cfg.ID, b.verifyPE, prev.Value, b.round)
			}
			b.verifyPE++
		}
		if b.verifyPE < b.cfg.Participants {
			b.lastIssuedProgressRead = true
			return Read(b.cfg.Progress+bus.Addr(b.verifyPE), coherence.ClassShared)
		}
		b.lastIssuedProgressRead = false
		b.phase = bStart
		return b.Next(Result{})
	case bHalted:
		return Halt()
	}
	return Halt()
}

// SemaphoreConfig parameterizes a counting-semaphore agent: P (wait),
// critical work, V (signal), repeated.
type SemaphoreConfig struct {
	// Lock guards the count.
	Lock bus.Addr
	// Count is the semaphore value; initialize memory to the capacity
	// before the run (the machine's memory starts at zero, so use
	// InitOps to set it, or dedicate PE0's first operation to it).
	Count bus.Addr
	// Iterations is the number of P/V pairs to perform.
	Iterations int
	// HoldCycles of compute while holding the semaphore.
	HoldCycles int
	// Initialize, when true, makes this agent's first action a write of
	// Capacity to the count word (exactly one participant should set it).
	Initialize bool
	Capacity   bus.Word
}

func (c SemaphoreConfig) validate() error {
	if c.Iterations < 1 {
		return fmt.Errorf("workload: semaphore needs iterations")
	}
	if c.HoldCycles < 0 {
		return fmt.Errorf("workload: negative hold cycles")
	}
	if c.Initialize && c.Capacity < 1 {
		return fmt.Errorf("workload: semaphore capacity must be positive")
	}
	return nil
}

type semPhase uint8

const (
	sInit semPhase = iota
	sStart
	sTestedLock
	sTSedLock
	sReadCount
	sWroteDecrement
	sSpunCount
	sHeld
	sVTestedLock
	sVTSedLock
	sVReadCount
	sVWroteIncrement
	sHalted
)

// Semaphore is one client of a counting semaphore built from a TTS lock
// and a count word. P spins — in cache — on the count while the semaphore
// is exhausted.
type Semaphore struct {
	cfg      SemaphoreConfig
	phase    semPhase
	done     int
	acquired int
	// spunOnce marks that the count-spin loop has issued at least one
	// count read (its first prev is the lock release's result).
	spunOnce bool
	// vNeedsTest marks that the V phase was entered via a Compute op, so
	// the lock test must be issued before prev can be interpreted.
	vNeedsTest bool
}

// NewSemaphore builds one client.
func NewSemaphore(cfg SemaphoreConfig) (*Semaphore, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Semaphore{cfg: cfg}
	if !cfg.Initialize {
		s.phase = sStart
	}
	return s, nil
}

// MustSemaphore is NewSemaphore panicking on error.
func MustSemaphore(cfg SemaphoreConfig) *Semaphore {
	s, err := NewSemaphore(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Completed returns the number of finished P/V pairs.
func (s *Semaphore) Completed() int { return s.done }

// Next implements Agent.
func (s *Semaphore) Next(prev Result) Op {
	switch s.phase {
	case sInit:
		s.phase = sStart
		return Write(s.cfg.Count, s.cfg.Capacity, coherence.ClassShared)
	case sStart:
		if s.done >= s.cfg.Iterations {
			s.phase = sHalted
			return Halt()
		}
		s.phase = sTestedLock
		return Read(s.cfg.Lock, coherence.ClassShared)
	case sTestedLock:
		if prev.Value != 0 {
			return Read(s.cfg.Lock, coherence.ClassShared)
		}
		s.phase = sTSedLock
		return TestSet(s.cfg.Lock, 1)
	case sTSedLock:
		if prev.Value != 0 {
			s.phase = sTestedLock
			return Read(s.cfg.Lock, coherence.ClassShared)
		}
		s.phase = sReadCount
		return Read(s.cfg.Count, coherence.ClassShared)
	case sReadCount:
		if prev.Value == 0 {
			// Exhausted: release the lock and spin on the count outside
			// it (the TTS idea applied to the semaphore value).
			s.phase = sSpunCount
			return Write(s.cfg.Lock, 0, coherence.ClassShared)
		}
		s.phase = sWroteDecrement
		return Write(s.cfg.Count, prev.Value-1, coherence.ClassShared)
	case sSpunCount:
		// prev is either the lock release or a count read; keep reading
		// the count until it looks positive, then retry the lock.
		if prev.Value > 0 && s.spunOnce {
			s.spunOnce = false
			s.phase = sTestedLock
			return Read(s.cfg.Lock, coherence.ClassShared)
		}
		s.spunOnce = true
		return Read(s.cfg.Count, coherence.ClassShared)
	case sWroteDecrement:
		// Holding a unit: release the lock, then do the critical work.
		s.acquired++
		s.phase = sHeld
		return Write(s.cfg.Lock, 0, coherence.ClassShared)
	case sHeld:
		s.phase = sVTestedLock
		if s.cfg.HoldCycles > 0 {
			s.vNeedsTest = true
			return Compute(s.cfg.HoldCycles)
		}
		return Read(s.cfg.Lock, coherence.ClassShared)
	case sVTestedLock:
		if s.vNeedsTest {
			s.vNeedsTest = false
			return Read(s.cfg.Lock, coherence.ClassShared)
		}
		if prev.Value != 0 {
			return Read(s.cfg.Lock, coherence.ClassShared)
		}
		s.phase = sVTSedLock
		return TestSet(s.cfg.Lock, 1)
	case sVTSedLock:
		if prev.Value != 0 {
			s.phase = sVTestedLock
			return Read(s.cfg.Lock, coherence.ClassShared)
		}
		s.phase = sVReadCount
		return Read(s.cfg.Count, coherence.ClassShared)
	case sVReadCount:
		s.phase = sVWroteIncrement
		return Write(s.cfg.Count, prev.Value+1, coherence.ClassShared)
	case sVWroteIncrement:
		s.done++
		s.phase = sStart
		return Write(s.cfg.Lock, 0, coherence.ClassShared)
	case sHalted:
		return Halt()
	}
	return Halt()
}
