package workload

import (
	"testing"

	"repro/internal/bus"
)

func TestBarrierConfigValidation(t *testing.T) {
	bad := []BarrierConfig{
		{Participants: 0, Rounds: 1},
		{Participants: 2, Rounds: 0},
		{Participants: 2, Rounds: 1, ID: 2},
		{Participants: 2, Rounds: 1, ID: -1},
		{Participants: 2, Rounds: 1, WorkCycles: -1},
	}
	for i, cfg := range bad {
		if _, err := NewBarrier(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustBarrier did not panic")
			}
		}()
		MustBarrier(BarrierConfig{})
	}()
}

// TestBarrierSoloParticipant: with one participant every arrival is the
// last, so the agent runs straight through its rounds.
func TestBarrierSoloParticipant(t *testing.T) {
	b := MustBarrier(BarrierConfig{
		Lock: 0, Counter: 1, Sense: 2, Progress: 10,
		Participants: 1, Rounds: 3,
	})
	// Drive it with a perfect single-PE memory emulation.
	mem := map[bus.Addr]bus.Word{}
	prev := Result{}
	for steps := 0; steps < 1000; steps++ {
		op := b.Next(prev)
		switch op.Kind {
		case OpHalt:
			if b.Rounds() != 3 {
				t.Fatalf("halted after %d rounds, want 3", b.Rounds())
			}
			if b.Err() != nil {
				t.Fatal(b.Err())
			}
			return
		case OpRead:
			prev = Result{Value: mem[op.Addr]}
		case OpWrite:
			mem[op.Addr] = op.Data
			prev = Result{Value: op.Data}
		case OpTestSet:
			old := mem[op.Addr]
			if old == 0 {
				mem[op.Addr] = op.Data
			}
			prev = Result{Value: old}
		case OpCompute:
			prev = Result{}
		}
	}
	t.Fatal("barrier did not complete")
}

func TestBarrierTargetSenseAlternates(t *testing.T) {
	b := MustBarrier(BarrierConfig{Participants: 2, Rounds: 4})
	if b.targetSense() != 1 {
		t.Fatalf("round 0 target = %d, want 1", b.targetSense())
	}
	b.round = 1
	if b.targetSense() != 0 {
		t.Fatalf("round 1 target = %d, want 0", b.targetSense())
	}
}

func TestSemaphoreConfigValidation(t *testing.T) {
	bad := []SemaphoreConfig{
		{Iterations: 0},
		{Iterations: 1, HoldCycles: -1},
		{Iterations: 1, Initialize: true, Capacity: 0},
	}
	for i, cfg := range bad {
		if _, err := NewSemaphore(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustSemaphore did not panic")
			}
		}()
		MustSemaphore(SemaphoreConfig{})
	}()
}

// TestSemaphoreSolo: a single client against an ideal memory.
func TestSemaphoreSolo(t *testing.T) {
	s := MustSemaphore(SemaphoreConfig{
		Lock: 0, Count: 1, Iterations: 3,
		Initialize: true, Capacity: 2, HoldCycles: 2,
	})
	mem := map[bus.Addr]bus.Word{}
	prev := Result{}
	for steps := 0; steps < 1000; steps++ {
		op := s.Next(prev)
		switch op.Kind {
		case OpHalt:
			if s.Completed() != 3 {
				t.Fatalf("completed %d, want 3", s.Completed())
			}
			// P and V balance: the count is back at capacity.
			if mem[1] != 2 {
				t.Fatalf("final count = %d, want 2", mem[1])
			}
			return
		case OpRead:
			prev = Result{Value: mem[op.Addr]}
		case OpWrite:
			mem[op.Addr] = op.Data
			prev = Result{Value: op.Data}
		case OpTestSet:
			old := mem[op.Addr]
			if old == 0 {
				mem[op.Addr] = op.Data
			}
			prev = Result{Value: old}
		case OpCompute:
			prev = Result{}
		}
	}
	t.Fatal("semaphore did not complete")
}
