package workload

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/coherence"
)

// Strategy selects how a lock is acquired (Section 6).
type Strategy uint8

const (
	// StrategyTS spins on the atomic Test-and-Set itself: every attempt
	// is a bus read-modify-write, the hot-spot behavior of Figure 6-1.
	StrategyTS Strategy = iota
	// StrategyTTS is the paper's Test-and-Test-and-Set: spin on a plain
	// (cachable) read and only issue the atomic operation when the lock
	// looks free — Figures 6-2 and 6-3.
	StrategyTTS
)

func (s Strategy) String() string {
	if s == StrategyTS {
		return "ts"
	}
	return "tts"
}

// SpinlockConfig parameterizes a lock-contention agent.
type SpinlockConfig struct {
	Lock     bus.Addr
	Strategy Strategy
	// Iterations is the number of acquisitions to perform; the agent then
	// halts. Zero acquires forever.
	Iterations int
	// CriticalReads/CriticalWrites are performed on the guarded words
	// while holding the lock.
	CriticalReads  int
	CriticalWrites int
	GuardedBase    bus.Addr
	GuardedWords   int
	// ThinkCycles of processor-internal work separate a release from the
	// next acquisition attempt.
	ThinkCycles int
	Seed        uint64
}

func (c SpinlockConfig) validate() error {
	if c.CriticalReads < 0 || c.CriticalWrites < 0 || c.ThinkCycles < 0 {
		return fmt.Errorf("workload: negative spinlock parameters")
	}
	if (c.CriticalReads > 0 || c.CriticalWrites > 0) && c.GuardedWords < 1 {
		return fmt.Errorf("workload: critical section configured without guarded words")
	}
	return nil
}

// spinPhase is the spinlock agent's state.
type spinPhase uint8

const (
	spinStart     spinPhase = iota
	spinAfterTest           // previous op: plain read of the lock (TTS)
	spinAfterTS             // previous op: Test-and-Set
	spinCritical            // previous op: a critical-section access
	spinAfterRelease
	spinAfterThink
	spinHalted
)

// Spinlock is the contention agent of the Figure 6 scenarios.
type Spinlock struct {
	cfg      SpinlockConfig
	rng      *RNG
	phase    spinPhase
	critLeft int
	seq      bus.Word

	acquisitions int
	attempts     int // Test-and-Sets issued
	spins        int // plain test reads that found the lock held
}

// NewSpinlock builds a spinlock agent.
func NewSpinlock(cfg SpinlockConfig) (*Spinlock, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Spinlock{cfg: cfg, rng: NewRNG(cfg.Seed + 1)}, nil
}

// MustSpinlock is NewSpinlock panicking on error.
func MustSpinlock(cfg SpinlockConfig) *Spinlock {
	s, err := NewSpinlock(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Acquisitions returns the number of completed acquisitions.
func (s *Spinlock) Acquisitions() int { return s.acquisitions }

// Attempts returns the number of Test-and-Set operations issued.
func (s *Spinlock) Attempts() int { return s.attempts }

// Spins returns the number of in-cache test reads that saw the lock held.
func (s *Spinlock) Spins() int { return s.spins }

// Next implements Agent.
func (s *Spinlock) Next(prev Result) Op {
	switch s.phase {
	case spinStart:
		return s.tryAcquire()
	case spinAfterTest:
		if prev.Value != 0 {
			s.spins++
			return Read(s.cfg.Lock, coherence.ClassShared) // keep spinning
		}
		s.phase = spinAfterTS
		s.attempts++
		return TestSet(s.cfg.Lock, 1)
	case spinAfterTS:
		if prev.Value != 0 {
			// Lost the race; back to testing (TTS) or retrying (TS).
			return s.tryAcquire()
		}
		s.acquisitions++
		s.critLeft = s.cfg.CriticalReads + s.cfg.CriticalWrites
		return s.criticalOrRelease()
	case spinCritical:
		return s.criticalOrRelease()
	case spinAfterRelease:
		if s.cfg.Iterations > 0 && s.acquisitions >= s.cfg.Iterations {
			s.phase = spinHalted
			return Halt()
		}
		if s.cfg.ThinkCycles > 0 {
			s.phase = spinAfterThink
			return Compute(s.cfg.ThinkCycles)
		}
		return s.tryAcquire()
	case spinAfterThink:
		return s.tryAcquire()
	case spinHalted:
		return Halt()
	}
	return Halt()
}

func (s *Spinlock) tryAcquire() Op {
	if s.cfg.Strategy == StrategyTTS {
		s.phase = spinAfterTest
		return Read(s.cfg.Lock, coherence.ClassShared)
	}
	s.phase = spinAfterTS
	s.attempts++
	return TestSet(s.cfg.Lock, 1)
}

func (s *Spinlock) criticalOrRelease() Op {
	if s.critLeft <= 0 {
		s.phase = spinAfterRelease
		return Write(s.cfg.Lock, 0, coherence.ClassShared)
	}
	s.phase = spinCritical
	i := s.critLeft
	s.critLeft--
	addr := s.cfg.GuardedBase + bus.Addr(s.rng.Intn(s.cfg.GuardedWords))
	if i <= s.cfg.CriticalWrites {
		s.seq++
		return Write(addr, s.seq, coherence.ClassShared)
	}
	return Read(addr, coherence.ClassShared)
}

// ArrayInit writes each word of [Base, Base+Words) exactly once and halts:
// the Section 5 scenario ("the initialization of an array that is much too
// large to fit in a cache") behind the RB-two-writes vs RWB-one-write
// claim.
type ArrayInit struct {
	Base  bus.Addr
	Words int
	// Value written is the element index plus one (nonzero, so the words
	// are distinguishable from uninitialized memory).
	pos int
}

// NewArrayInit builds the initialization agent.
func NewArrayInit(base bus.Addr, words int) *ArrayInit {
	return &ArrayInit{Base: base, Words: words}
}

// Next implements Agent.
func (a *ArrayInit) Next(Result) Op {
	if a.pos >= a.Words {
		return Halt()
	}
	op := Write(a.Base+bus.Addr(a.pos), bus.Word(a.pos+1), coherence.ClassShared)
	a.pos++
	return op
}

// Hotspot reads and increments a single shared word in a tight loop: the
// unsynchronized hot-spot stressor (Section 6's motivation). Increments is
// the number of read+write pairs; zero runs forever.
type Hotspot struct {
	Addr       bus.Addr
	Increments int
	done       int
	readPhase  bool
	last       bus.Word
}

// NewHotspot builds the stressor.
func NewHotspot(addr bus.Addr, increments int) *Hotspot {
	return &Hotspot{Addr: addr, Increments: increments}
}

// Next implements Agent.
func (h *Hotspot) Next(prev Result) Op {
	if h.readPhase {
		// prev holds the loaded counter; store counter+1.
		h.readPhase = false
		h.done++
		return Write(h.Addr, prev.Value+1, coherence.ClassShared)
	}
	if h.Increments > 0 && h.done >= h.Increments {
		return Halt()
	}
	h.readPhase = true
	return Read(h.Addr, coherence.ClassShared)
}

// Producer writes Items sequence-numbered values into a slot and publishes
// each by writing the sequence number to a flag word; Consumer spins on
// the flag (in cache, TTS-style) and reads the slot after each publish.
// This is the "written by some one PE and then read by others" cyclical
// pattern of Section 5 that RWB's write broadcasting optimizes.
type Producer struct {
	Flag, Slot bus.Addr
	Items      int
	// Gap is compute time between items, giving consumers time to spin.
	Gap  int
	seq  int
	step uint8 // 0: write slot, 1: write flag, 2: gap
}

// NewProducer builds the producing agent.
func NewProducer(flag, slot bus.Addr, items, gap int) *Producer {
	return &Producer{Flag: flag, Slot: slot, Items: items, Gap: gap}
}

// Next implements Agent.
func (p *Producer) Next(Result) Op {
	if p.seq >= p.Items {
		return Halt()
	}
	switch p.step {
	case 0:
		p.step = 1
		return Write(p.Slot, bus.Word(1000+p.seq), coherence.ClassShared)
	case 1:
		p.step = 2
		p.seq++
		return Write(p.Flag, bus.Word(p.seq), coherence.ClassShared)
	default:
		p.step = 0
		if p.Gap > 0 {
			return Compute(p.Gap)
		}
		return Read(p.Flag, coherence.ClassShared) // benign touch
	}
}

// Consumer is Producer's counterpart: it spins reading the flag until the
// sequence number advances, then reads the slot.
type Consumer struct {
	Flag, Slot bus.Addr
	Items      int
	seen       bus.Word
	gotFlag    bool
	received   int
	// Values collects the consumed slot values for verification.
	Values []bus.Word
	step   uint8 // 0: read flag, 1: read slot
}

// NewConsumer builds the consuming agent.
func NewConsumer(flag, slot bus.Addr, items int) *Consumer {
	return &Consumer{Flag: flag, Slot: slot, Items: items}
}

// Received returns the number of items consumed.
func (c *Consumer) Received() int { return c.received }

// Next implements Agent.
func (c *Consumer) Next(prev Result) Op {
	if c.step == 1 {
		// prev is the slot value.
		c.Values = append(c.Values, prev.Value)
		c.received++
		c.step = 0
		if c.received >= c.Items {
			return Halt()
		}
		return Read(c.Flag, coherence.ClassShared)
	}
	if c.gotFlag && prev.Value > c.seen {
		c.seen = prev.Value
		c.step = 1
		return Read(c.Slot, coherence.ClassShared)
	}
	c.gotFlag = true
	return Read(c.Flag, coherence.ClassShared)
}

// Random issues Ops uniformly over a small address window — the fuzzing
// agent the machine-vs-oracle property tests use. Test-and-Sets are
// included so locked transactions are exercised too.
type Random struct {
	Base   bus.Addr
	Words  int
	Ops    int
	TSFrac float64
	WrFrac float64
	rng    *RNG
	done   int
	seq    bus.Word
}

// NewRandom builds the fuzz agent.
func NewRandom(base bus.Addr, words, ops int, wrFrac, tsFrac float64, seed uint64) *Random {
	return &Random{Base: base, Words: words, Ops: ops, WrFrac: wrFrac, TSFrac: tsFrac, rng: NewRNG(seed)}
}

// Next implements Agent.
func (r *Random) Next(Result) Op {
	if r.done >= r.Ops {
		return Halt()
	}
	r.done++
	r.seq++
	addr := r.Base + bus.Addr(r.rng.Intn(r.Words))
	u := r.rng.Float64()
	switch {
	case u < r.TSFrac:
		return TestSet(addr, r.seq)
	case u < r.TSFrac+r.WrFrac:
		return Write(addr, r.seq, coherence.ClassShared)
	default:
		return Read(addr, coherence.ClassShared)
	}
}
