package workload

// RNG is a small deterministic pseudo-random generator (SplitMix64).
// Simulations must be exactly reproducible across runs and platforms, so
// workload generators use this rather than math/rand: its sequence is
// pinned by this implementation, not by a library version.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. Distinct seeds give independent-looking
// streams; generators derive per-PE seeds as seed + PE index.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Reseed restores the generator to the state NewRNG(seed) would produce,
// so a shared RNG can be recycled across batch trials without
// reallocating it.
func (r *RNG) Reseed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Geometric returns a sample from a geometric-ish distribution: the number
// of failures before a success with probability p. Used for reuse-distance
// sampling in the locality model.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("workload: Geometric probability out of (0, 1]")
	}
	n := 0
	for r.Float64() >= p {
		n++
		if n > 1<<20 {
			break // pathological p; bound the tail
		}
	}
	return n
}
