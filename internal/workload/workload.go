// Package workload defines the programs the simulated processing elements
// execute and the generators that synthesize the paper's workloads.
//
// The paper's measurements came from two sources we cannot rerun: Raskin's
// Cm* application traces (Table 1-1) and hand-worked synchronization
// scenarios (Figures 6-1..6-3). Both are reproduced here as deterministic
// generators: a synthetic application with the reference mix and locality
// the paper reports, and scripted/reactive lock-contention agents built
// from Test-and-Set and Test-and-Test-and-Set.
//
// An Agent is a reactive program: the processor asks it for one operation
// at a time, feeding back the result of the previous operation (the value
// read, or the old value of a Test-and-Set). Reactivity is what lets a
// spin-lock agent decide, after seeing the lock byte, whether to spin in
// the cache or issue the atomic bus operation — the essence of TTS.
package workload

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/coherence"
)

// OpKind enumerates processor operations.
type OpKind uint8

const (
	// OpRead is a plain load (cachable per the protocol).
	OpRead OpKind = iota
	// OpWrite is a plain store.
	OpWrite
	// OpTestSet is the atomic Test-and-Set instruction of Section 6: if
	// the word is 0 it becomes Data; the old value is returned either way.
	OpTestSet
	// OpCompute models Cycles of processor-internal work: no memory
	// reference, no bus pressure.
	OpCompute
	// OpHalt ends the agent's execution; the processor idles forever.
	OpHalt
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpTestSet:
		return "ts"
	case OpCompute:
		return "compute"
	case OpHalt:
		return "halt"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one processor operation.
type Op struct {
	Kind   OpKind
	Addr   bus.Addr
	Data   bus.Word        // store value / Test-and-Set value
	Class  coherence.Class // reference class (statistics; Cm* cachability)
	Cycles int             // OpCompute duration
}

// Convenience constructors keep generator code terse.

// Read builds a load of the given class.
func Read(a bus.Addr, class coherence.Class) Op {
	return Op{Kind: OpRead, Addr: a, Class: class}
}

// Write builds a store of the given class.
func Write(a bus.Addr, v bus.Word, class coherence.Class) Op {
	return Op{Kind: OpWrite, Addr: a, Data: v, Class: class}
}

// TestSet builds a Test-and-Set of v (normally 1).
func TestSet(a bus.Addr, v bus.Word) Op {
	return Op{Kind: OpTestSet, Addr: a, Data: v, Class: coherence.ClassShared}
}

// Compute builds n cycles of processor-internal work.
func Compute(n int) Op { return Op{Kind: OpCompute, Cycles: n} }

// Halt ends the program.
func Halt() Op { return Op{Kind: OpHalt} }

// Result carries the outcome of the previously issued operation back to
// the agent: the loaded value for OpRead, the old word for OpTestSet
// (0 means the set succeeded), and zero otherwise.
type Result struct {
	Value bus.Word
}

// Agent is a reactive processor program.
type Agent interface {
	// Next returns the next operation given the previous operation's
	// result. The first call receives a zero Result. After returning an
	// OpHalt, Next is not called again.
	Next(prev Result) Op
}

// Reseeder is an Agent that can return to its freshly constructed state
// for a new base seed, deriving any per-PE stream from it internally
// exactly as its constructor would. Machine.Reset requires every agent
// to implement it; agents that are cheap to rebuild (e.g. Random, whose
// callers pre-derive the final seed) skip the interface and go through
// Machine.ResetWith instead.
type Reseeder interface {
	Agent
	// Reseed discards all run state and re-derives the stream from the
	// base seed, so the agent behaves as if just constructed with it.
	Reseed(seed uint64)
}

// Trace is an Agent replaying a fixed operation sequence, then halting.
// It implements Reseeder — replay has no seed, so Reseed just rewinds —
// which makes captured traces first-class workloads everywhere Reseeder
// agents run (sweeps, batched arenas, Machine.Reset).
type Trace struct {
	Ops []Op
	pos int
}

// NewTrace copies ops into a replay agent.
func NewTrace(ops ...Op) *Trace {
	t := &Trace{Ops: make([]Op, len(ops))}
	copy(t.Ops, ops)
	return t
}

// Next implements Agent.
func (t *Trace) Next(Result) Op {
	if t.pos >= len(t.Ops) {
		return Halt()
	}
	op := t.Ops[t.pos]
	t.pos++
	return op
}

// Reseed implements Reseeder: a trace's stream is seed-independent, so
// any seed rewinds the replay to the first operation.
func (t *Trace) Reseed(uint64) { t.pos = 0 }

// Func adapts a function to the Agent interface.
type Func func(prev Result) Op

// Next implements Agent.
func (f Func) Next(prev Result) Op { return f(prev) }

// Idle is an Agent that halts immediately.
func Idle() Agent { return NewTrace() }
