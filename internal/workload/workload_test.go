package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bus"
	"repro/internal/coherence"
)

func TestOpKindStrings(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpRead: "read", OpWrite: "write", OpTestSet: "ts",
		OpCompute: "compute", OpHalt: "halt",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if OpKind(99).String() == "" {
		t.Error("unknown kind has empty String()")
	}
}

func TestConstructors(t *testing.T) {
	if op := Read(5, coherence.ClassCode); op.Kind != OpRead || op.Addr != 5 || op.Class != coherence.ClassCode {
		t.Errorf("Read = %+v", op)
	}
	if op := Write(5, 9, coherence.ClassLocal); op.Kind != OpWrite || op.Data != 9 {
		t.Errorf("Write = %+v", op)
	}
	if op := TestSet(5, 1); op.Kind != OpTestSet || op.Data != 1 || op.Class != coherence.ClassShared {
		t.Errorf("TestSet = %+v", op)
	}
	if op := Compute(7); op.Kind != OpCompute || op.Cycles != 7 {
		t.Errorf("Compute = %+v", op)
	}
	if op := Halt(); op.Kind != OpHalt {
		t.Errorf("Halt = %+v", op)
	}
}

func TestTraceReplaysAndHalts(t *testing.T) {
	tr := NewTrace(Read(1, coherence.ClassShared), Write(2, 3, coherence.ClassShared))
	if op := tr.Next(Result{}); op.Kind != OpRead {
		t.Fatal("first op")
	}
	if op := tr.Next(Result{}); op.Kind != OpWrite {
		t.Fatal("second op")
	}
	for i := 0; i < 3; i++ {
		if op := tr.Next(Result{}); op.Kind != OpHalt {
			t.Fatal("trace did not halt")
		}
	}
}

func TestFuncAgent(t *testing.T) {
	calls := 0
	a := Func(func(prev Result) Op { calls++; return Halt() })
	a.Next(Result{})
	if calls != 1 {
		t.Fatal("Func agent not invoked")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	buckets := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/10) > n/10*0.1 {
			t.Fatalf("bucket %d = %d, too far from %d", i, c, n/10)
		}
	}
	// Float64 stays in [0,1).
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of range", f)
		}
	}
}

func TestRNGGeometric(t *testing.T) {
	r := NewRNG(11)
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-1.0) > 0.1 { // E[failures] = (1-p)/p = 1
		t.Fatalf("geometric(0.5) mean = %g, want ~1", mean)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Geometric(0) did not panic")
			}
		}()
		r.Geometric(0)
	}()
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestLayoutSegmentsDisjoint(t *testing.T) {
	l := DefaultLayout()
	type seg struct{ lo, hi bus.Addr }
	var segs []seg
	segs = append(segs, seg{l.SharedBase, l.SharedBase + bus.Addr(l.SharedWords)})
	for pe := 0; pe < 8; pe++ {
		segs = append(segs,
			seg{l.CodeBase(pe), l.CodeBase(pe) + bus.Addr(l.CodeWords)},
			seg{l.LocalBase(pe), l.LocalBase(pe) + bus.Addr(l.LocalWords)})
	}
	for i := range segs {
		for j := i + 1; j < len(segs); j++ {
			if segs[i].lo < segs[j].hi && segs[j].lo < segs[i].hi {
				t.Fatalf("segments %d and %d overlap: %+v %+v", i, j, segs[i], segs[j])
			}
		}
	}
}

func TestAppProfileValidation(t *testing.T) {
	bad := PDEProfile()
	bad.SharedFrac = 0.9
	bad.LocalWriteFrac = 0.3
	if err := bad.Validate(); err == nil {
		t.Error("fractions > 1 accepted")
	}
	bad2 := PDEProfile()
	bad2.HotSet = 0
	if err := bad2.Validate(); err == nil {
		t.Error("HotSet = 0 accepted")
	}
	if err := PDEProfile().Validate(); err != nil {
		t.Errorf("PDE profile invalid: %v", err)
	}
	if err := QuicksortProfile().Validate(); err != nil {
		t.Errorf("Quicksort profile invalid: %v", err)
	}
}

func TestAppReferenceMix(t *testing.T) {
	profile := PDEProfile()
	layout := DefaultLayout()
	app := MustApp(profile, layout, 0, 1, 0)
	const n = 200000
	var shared, localWrite, codeRead, localRead int
	for i := 0; i < n; i++ {
		op := app.Next(Result{})
		switch {
		case op.Class == coherence.ClassShared:
			shared++
		case op.Class == coherence.ClassLocal && op.Kind == OpWrite:
			localWrite++
		case op.Class == coherence.ClassCode:
			codeRead++
		default:
			localRead++
		}
	}
	frac := func(c int) float64 { return float64(c) / n }
	if math.Abs(frac(shared)-0.05) > 0.01 {
		t.Errorf("shared fraction = %.3f, want ~0.05", frac(shared))
	}
	if math.Abs(frac(localWrite)-0.08) > 0.01 {
		t.Errorf("local-write fraction = %.3f, want ~0.08", frac(localWrite))
	}
	if codeRead == 0 || localRead == 0 {
		t.Error("missing code or local-read references")
	}
	if app.Refs() != n {
		t.Errorf("Refs() = %d, want %d", app.Refs(), n)
	}
}

func TestAppAddressesStayInSegments(t *testing.T) {
	layout := DefaultLayout()
	app := MustApp(QuicksortProfile(), layout, 3, 9, 0)
	for i := 0; i < 50000; i++ {
		op := app.Next(Result{})
		switch op.Class {
		case coherence.ClassShared:
			if op.Addr < layout.SharedBase || op.Addr >= layout.SharedBase+bus.Addr(layout.SharedWords) {
				t.Fatalf("shared ref %d outside segment", op.Addr)
			}
		case coherence.ClassCode:
			if op.Addr < layout.CodeBase(3) || op.Addr >= layout.CodeBase(3)+bus.Addr(layout.CodeWords) {
				t.Fatalf("code ref %d outside segment", op.Addr)
			}
		case coherence.ClassLocal:
			if op.Addr < layout.LocalBase(3) || op.Addr >= layout.LocalBase(3)+bus.Addr(layout.LocalWords) {
				t.Fatalf("local ref %d outside segment", op.Addr)
			}
		}
	}
}

func TestAppHaltsAtMaxRefs(t *testing.T) {
	app := MustApp(PDEProfile(), DefaultLayout(), 0, 1, 10)
	for i := 0; i < 10; i++ {
		if op := app.Next(Result{}); op.Kind == OpHalt {
			t.Fatalf("halted early at %d", i)
		}
	}
	if op := app.Next(Result{}); op.Kind != OpHalt {
		t.Fatal("did not halt at maxRefs")
	}
}

func TestAppDeterministic(t *testing.T) {
	a := MustApp(PDEProfile(), DefaultLayout(), 2, 5, 0)
	b := MustApp(PDEProfile(), DefaultLayout(), 2, 5, 0)
	for i := 0; i < 10000; i++ {
		if a.Next(Result{}) != b.Next(Result{}) {
			t.Fatal("same-seed apps diverged")
		}
	}
}

// TestStackModelLocality: the read stream must be markedly more local than
// uniform — the top-of-stack re-reference rate should be high, and deeper
// reuse must still occur.
func TestStackModelLocality(t *testing.T) {
	rng := NewRNG(3)
	m := newStackModel(rng, 0, 4096, AppProfile{HotFrac: 0.6, HotSet: 16, MaxDepth: 4096})
	seen := make(map[bus.Addr]int)
	const n = 50000
	for i := 0; i < n; i++ {
		seen[m.next()]++
	}
	if len(seen) < 100 {
		t.Fatalf("only %d distinct addresses; stream is degenerate", len(seen))
	}
	if len(seen) > n/4 {
		t.Fatalf("%d distinct addresses in %d refs; no locality", len(seen), n)
	}
}

func TestSpinlockTTSSequence(t *testing.T) {
	s := MustSpinlock(SpinlockConfig{
		Lock: 100, Strategy: StrategyTTS, Iterations: 1,
		CriticalReads: 1, CriticalWrites: 1, GuardedBase: 200, GuardedWords: 4,
	})
	// First op: a plain test read.
	op := s.Next(Result{})
	if op.Kind != OpRead || op.Addr != 100 {
		t.Fatalf("first op = %+v, want test read of lock", op)
	}
	// Lock held: keep spinning with reads.
	op = s.Next(Result{Value: 1})
	if op.Kind != OpRead {
		t.Fatalf("spin op = %+v, want read", op)
	}
	if s.Spins() != 1 {
		t.Fatal("spin not counted")
	}
	// Lock free: escalate to Test-and-Set.
	op = s.Next(Result{Value: 0})
	if op.Kind != OpTestSet {
		t.Fatalf("escalation = %+v, want TS", op)
	}
	// TS failed (someone beat us): back to testing.
	op = s.Next(Result{Value: 1})
	if op.Kind != OpRead {
		t.Fatalf("after lost race = %+v, want test read", op)
	}
	// Free again, TS succeeds: critical section begins.
	s.Next(Result{Value: 0})      // -> TS
	op = s.Next(Result{Value: 0}) // TS success -> first critical op
	if op.Kind != OpRead || op.Addr < 200 || op.Addr >= 204 {
		t.Fatalf("critical op = %+v, want guarded read", op)
	}
	op = s.Next(Result{Value: 5}) // second critical op: the write
	if op.Kind != OpWrite {
		t.Fatalf("critical op 2 = %+v, want guarded write", op)
	}
	// Release.
	op = s.Next(Result{})
	if op.Kind != OpWrite || op.Addr != 100 || op.Data != 0 {
		t.Fatalf("release = %+v", op)
	}
	if s.Acquisitions() != 1 {
		t.Fatalf("acquisitions = %d", s.Acquisitions())
	}
	// Iterations exhausted: halt.
	if op = s.Next(Result{}); op.Kind != OpHalt {
		t.Fatalf("after release = %+v, want halt", op)
	}
}

func TestSpinlockTSNeverTests(t *testing.T) {
	s := MustSpinlock(SpinlockConfig{Lock: 100, Strategy: StrategyTS, Iterations: 1})
	op := s.Next(Result{})
	if op.Kind != OpTestSet {
		t.Fatalf("first op = %+v, want TS", op)
	}
	// Failure spins on TS itself.
	for i := 0; i < 5; i++ {
		op = s.Next(Result{Value: 1})
		if op.Kind != OpTestSet {
			t.Fatalf("TS retry %d = %+v", i, op)
		}
	}
	if s.Attempts() != 6 {
		t.Fatalf("attempts = %d, want 6", s.Attempts())
	}
	// Success: no critical ops configured, so release follows.
	op = s.Next(Result{Value: 0})
	if op.Kind != OpWrite || op.Data != 0 {
		t.Fatalf("release = %+v", op)
	}
}

func TestSpinlockThinkCycles(t *testing.T) {
	s := MustSpinlock(SpinlockConfig{Lock: 1, Strategy: StrategyTS, Iterations: 2, ThinkCycles: 5})
	s.Next(Result{})         // TS
	s.Next(Result{Value: 0}) // success -> release
	op := s.Next(Result{})   // after release -> think
	if op.Kind != OpCompute || op.Cycles != 5 {
		t.Fatalf("think = %+v", op)
	}
	if op = s.Next(Result{}); op.Kind != OpTestSet {
		t.Fatalf("after think = %+v", op)
	}
}

func TestSpinlockValidation(t *testing.T) {
	if _, err := NewSpinlock(SpinlockConfig{Lock: 1, CriticalReads: 1}); err == nil {
		t.Error("critical section without guarded words accepted")
	}
	if _, err := NewSpinlock(SpinlockConfig{Lock: 1, ThinkCycles: -1}); err == nil {
		t.Error("negative think cycles accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustSpinlock did not panic")
			}
		}()
		MustSpinlock(SpinlockConfig{Lock: 1, CriticalWrites: 2})
	}()
}

func TestArrayInitWritesEachWordOnce(t *testing.T) {
	a := NewArrayInit(1000, 5)
	seen := map[bus.Addr]bus.Word{}
	for {
		op := a.Next(Result{})
		if op.Kind == OpHalt {
			break
		}
		if op.Kind != OpWrite {
			t.Fatalf("op = %+v, want write", op)
		}
		if _, dup := seen[op.Addr]; dup {
			t.Fatalf("address %d written twice", op.Addr)
		}
		seen[op.Addr] = op.Data
	}
	if len(seen) != 5 {
		t.Fatalf("wrote %d words, want 5", len(seen))
	}
	if seen[1002] != 3 {
		t.Fatalf("element value = %d, want index+1", seen[1002])
	}
}

func TestHotspotAlternatesReadIncrement(t *testing.T) {
	h := NewHotspot(50, 2)
	op := h.Next(Result{})
	if op.Kind != OpRead || op.Addr != 50 {
		t.Fatalf("op1 = %+v", op)
	}
	op = h.Next(Result{Value: 7})
	if op.Kind != OpWrite || op.Data != 8 {
		t.Fatalf("op2 = %+v, want write of 8", op)
	}
	h.Next(Result{})              // read
	op = h.Next(Result{Value: 8}) // write 9
	if op.Data != 9 {
		t.Fatalf("op4 = %+v", op)
	}
	if op = h.Next(Result{}); op.Kind != OpHalt {
		t.Fatalf("op5 = %+v, want halt", op)
	}
}

func TestProducerConsumerProtocol(t *testing.T) {
	p := NewProducer(10, 11, 2, 0)
	ops := []Op{}
	for {
		op := p.Next(Result{})
		if op.Kind == OpHalt {
			break
		}
		ops = append(ops, op)
		if len(ops) > 20 {
			t.Fatal("producer did not halt")
		}
	}
	// slot, flag, touch, slot, flag, touch
	if ops[0].Addr != 11 || ops[1].Addr != 10 || ops[1].Data != 1 {
		t.Fatalf("producer ops = %+v", ops[:2])
	}

	c := NewConsumer(10, 11, 1)
	op := c.Next(Result{})
	if op.Kind != OpRead || op.Addr != 10 {
		t.Fatalf("consumer op1 = %+v", op)
	}
	// Flag unchanged: spin.
	op = c.Next(Result{Value: 0})
	if op.Addr != 10 {
		t.Fatalf("consumer spin = %+v", op)
	}
	// Flag advanced: read the slot.
	op = c.Next(Result{Value: 1})
	if op.Addr != 11 {
		t.Fatalf("consumer fetch = %+v", op)
	}
	op = c.Next(Result{Value: 1000})
	if op.Kind != OpHalt {
		t.Fatalf("consumer end = %+v", op)
	}
	if c.Received() != 1 || len(c.Values) != 1 || c.Values[0] != 1000 {
		t.Fatalf("consumer state: received=%d values=%v", c.Received(), c.Values)
	}
}

func TestRandomAgentBounds(t *testing.T) {
	r := NewRandom(100, 8, 50, 0.3, 0.1, 1)
	count := 0
	for {
		op := r.Next(Result{})
		if op.Kind == OpHalt {
			break
		}
		count++
		if op.Addr < 100 || op.Addr >= 108 {
			t.Fatalf("address %d out of window", op.Addr)
		}
	}
	if count != 50 {
		t.Fatalf("issued %d ops, want 50", count)
	}
}

// Property: Random agents with the same seed produce identical streams.
func TestQuickRandomDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a := NewRandom(0, 16, 100, 0.4, 0.1, seed)
		b := NewRandom(0, 16, 100, 0.4, 0.1, seed)
		for {
			x, y := a.Next(Result{}), b.Next(Result{})
			if x != y {
				return false
			}
			if x.Kind == OpHalt {
				return true
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
