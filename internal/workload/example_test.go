package workload_test

import (
	"fmt"

	"repro/internal/workload"
)

// ExampleSpinlock shows the TTS decision sequence: test in cache, then
// escalate to the atomic operation only when the lock looks free.
func ExampleSpinlock() {
	s := workload.MustSpinlock(workload.SpinlockConfig{
		Lock: 100, Strategy: workload.StrategyTTS, Iterations: 1,
	})
	op := s.Next(workload.Result{})                // the test
	fmt.Println(op.Kind, "of the lock word first") // a plain cachable read
	op = s.Next(workload.Result{Value: 1})         // lock held: spin
	fmt.Println(op.Kind, "again while held")
	op = s.Next(workload.Result{Value: 0}) // looks free: escalate
	fmt.Println(op.Kind, "only now")
	// Output:
	// read of the lock word first
	// read again while held
	// ts only now
}

// ExampleApp generates the Table 1-1 reference mix.
func ExampleApp() {
	app := workload.MustApp(workload.PDEProfile(), workload.DefaultLayout(), 0, 1, 0)
	counts := map[string]int{}
	for i := 0; i < 100000; i++ {
		op := app.Next(workload.Result{})
		counts[op.Class.String()]++
	}
	fmt.Println("shared refs ~5%:", counts["shared"] > 4000 && counts["shared"] < 6000)
	// Output:
	// shared refs ~5%: true
}
