#!/bin/sh
# bench.sh — benchmark entry points; writes the BENCH_*.json artifacts.
#
#   bench.sh [sweep] [out]       sweep-engine benchmark -> BENCH_sweep.json
#   bench.sh core [out]          core cycle-loop benchmark -> BENCH_core.json
#   bench.sh all                 both, default outputs
#
# sweep: runs each benchmark experiment three ways — cold serial
# (workers=1), cold parallel (workers=GOMAXPROCS), warm (parallel again
# on the same store) — and records per-experiment wall time, jobs/sec,
# parallel speedup and warm-cache hit rate (schema sweep-bench-v1; see
# cmd/sweep/main.go runBench).
#
# core: runs the internal/perf scenario suite — simulated cycles/sec and
# allocs/cycle for 1/8/64-PE machines under RB and RWB, oracle on and
# off — and records the speedup against the recorded pre-refactor
# baseline (schema core-bench-v1; see cmd/benchcore/main.go).
set -eu
cd "$(dirname "$0")/.."

mode=${1:-sweep}
case "$mode" in
sweep)
	out=${2:-BENCH_sweep.json}
	echo "==> go run ./cmd/sweep -bench -bench-out $out"
	go run ./cmd/sweep -bench -bench-out "$out"
	echo "==> wrote $out"
	;;
core | bench-core)
	out=${2:-BENCH_core.json}
	echo "==> go run ./cmd/benchcore -out $out"
	go run ./cmd/benchcore -out "$out"
	echo "==> wrote $out"
	;;
all)
	sh "$0" sweep
	sh "$0" core
	;;
*)
	# Backward compatibility: a bare output path means the sweep mode.
	case "$mode" in
	*.json)
		sh "$0" sweep "$mode"
		;;
	*)
		echo "bench.sh: unknown mode '$mode' (want sweep, core, or all)" >&2
		exit 2
		;;
	esac
	;;
esac
