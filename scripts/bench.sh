#!/bin/sh
# bench.sh — benchmark the sweep engine and write BENCH_sweep.json.
#
# Runs each benchmark experiment three ways — cold serial (workers=1),
# cold parallel (workers=GOMAXPROCS), warm (parallel again on the same
# store) — and records per-experiment wall time, jobs/sec, parallel
# speedup and warm-cache hit rate. The JSON schema is sweep-bench-v1;
# see cmd/sweep/main.go (runBench) for the writer.
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_sweep.json}
echo "==> go run ./cmd/sweep -bench -bench-out $out"
go run ./cmd/sweep -bench -bench-out "$out"
echo "==> wrote $out"
