#!/bin/sh
# bench.sh — benchmark entry points; writes the BENCH_*.json artifacts.
#
#   bench.sh [sweep] [out]       sweep-engine benchmark -> BENCH_sweep.json
#   bench.sh core [out]          core cycle-loop benchmark -> BENCH_core.json
#   bench.sh serve [out]         service-layer load test -> BENCH_serve.json
#   bench.sh cluster [out]       cluster scaling curve -> BENCH_cluster.json
#   bench.sh profile [out]       miss-ratio profiler cost -> BENCH_profile.json
#   bench.sh all                 all of the above, default outputs
#
# sweep: runs each benchmark experiment four ways — cold serial
# (workers=1, fresh machine per job), cold parallel (workers=GOMAXPROCS,
# fresh machine per job), cold batched (same-shape jobs fused onto
# generation-reset machines), warm (parallel again on the same store) —
# and records per-experiment wall time, jobs/sec, batched jobs/sec, the
# batch and parallel speedups, and warm-cache hit rate (schema
# sweep-bench-v2; see cmd/sweep/main.go runBench).
#
# core: runs the internal/perf scenario suite — simulated cycles/sec and
# allocs/cycle for 1/8/64-PE machines under RB and RWB, oracle on and
# off — and records the speedup against the recorded pre-refactor
# baseline (schema core-bench-v1; see cmd/benchcore/main.go).
#
# serve: boots an embedded mimdserved over a cold store and drives the
# mixed spec set closed-loop at concurrency 32, cold then warm, and
# records latency percentiles, the warm/cold speedup (floor: 5x), and
# the server's coalescing/cache counters (schema serve-bench-v1; see
# cmd/loadgen/main.go).
#
# cluster: for 1, 2 and 4 workers, boots an embedded mimdrouter fleet
# over cold stores and drives Zipf-skewed traffic (with the mid-run
# hot-key shift) through the router, recording per-point latency,
# throughput and the router's replica/failover counters (schema
# cluster-bench-v1; see cmd/loadgen/cluster.go).
#
# profile: times an unprofiled vs profiled run (best of three each) and
# the 14-point cache-size sweep one profiled run replaces, recording the
# profiler's overhead and the sweep speedup plus per-size measured vs
# curve-predicted miss ratios (schema profile-bench-v1; see
# cmd/mimdsim/profile.go runProfileBench).
set -eu
cd "$(dirname "$0")/.."

mode=${1:-sweep}
case "$mode" in
sweep)
	out=${2:-BENCH_sweep.json}
	echo "==> go run ./cmd/sweep -bench -bench-out $out"
	go run ./cmd/sweep -bench -bench-out "$out"
	echo "==> wrote $out"
	;;
core | bench-core)
	out=${2:-BENCH_core.json}
	echo "==> go run ./cmd/benchcore -out $out"
	go run ./cmd/benchcore -out "$out"
	echo "==> wrote $out"
	;;
serve)
	out=${2:-BENCH_serve.json}
	echo "==> go run ./cmd/loadgen -min-speedup 5 -o $out"
	go run ./cmd/loadgen -min-speedup 5 -o "$out"
	echo "==> wrote $out"
	;;
cluster)
	out=${2:-BENCH_cluster.json}
	echo "==> go run ./cmd/loadgen -cluster 1,2,4 -skew 1.2 -seed 1 -o $out"
	go run ./cmd/loadgen -cluster 1,2,4 -skew 1.2 -seed 1 -o "$out"
	echo "==> wrote $out"
	;;
profile)
	out=${2:-BENCH_profile.json}
	echo "==> go run ./cmd/mimdsim -profile-bench $out"
	go run ./cmd/mimdsim -profile-bench "$out"
	echo "==> wrote $out"
	;;
all)
	sh "$0" sweep
	sh "$0" core
	sh "$0" serve
	sh "$0" cluster
	sh "$0" profile
	;;
*)
	# Backward compatibility: a bare output path means the sweep mode.
	case "$mode" in
	*.json)
		sh "$0" sweep "$mode"
		;;
	*)
		echo "bench.sh: unknown mode '$mode' (want sweep, core, serve, cluster, profile, or all)" >&2
		exit 2
		;;
	esac
	;;
esac
