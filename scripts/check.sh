#!/bin/sh
# check.sh — the repository's single CI entry point. Every gate below
# must pass before merging; `make check` runs this script.
#
#   1. gofmt       formatting is canonical
#   2. go vet      the stock static checks
#   3. go build    everything compiles
#   4. go test     the full suite (fuzz seeds included) under the race
#                  detector
#   5. allocs      the steady-state zero-allocation regression (runs
#                  without the race detector, whose instrumentation
#                  allocates; the -race pass above skips it)
#   6. protolint   the module's own analyzers: exhaustive switches,
#                  determinism, protocol table audit, phase ownership
#                  (phaseaudit), hot-path allocation freedom (allocaudit)
#                  and sync hygiene (syncaudit). Runs after the build/test
#                  gates because it type-checks the same tree those gates
#                  just proved compiles — a type error here would exit 2
#                  (tool/load failure) rather than 1 (findings), and we
#                  want that distinction to mean something.
#   7. modelcheck  a bounded run of the Section 4 product-machine proof
#                  over every protocol (n=3 caches keeps it seconds)
#   8. sweep       a bounded smoke of the orchestration engine: parallel
#                  output must be byte-identical to serial and a warm
#                  cache must execute zero jobs
#   9. batch       a bounded smoke of the S26 batched execution path: a
#                  2-shape x 3-seed sweep run fused (same-shape jobs on
#                  generation-reset machines) must produce reports, a
#                  journal, and store envelopes byte-identical to the
#                  unbatched fresh-machine-per-job run
#  10. faults      a bounded smoke of the S23 fault campaign: the report
#                  must be byte-identical between -j1, -j4, and the
#                  batched (arena-recycled) runner, and no detectable
#                  fault class may produce a silent divergence
#  11. serve       a bounded smoke of the S24 service daemon: boot on a
#                  loopback port, run an experiment over HTTP, verify the
#                  identical resubmission is a pure cache hit, and drain
#  12. router      a bounded smoke of the S25 cluster tier: in-process
#                  router + 2 workers; verifies sharded routing,
#                  cross-worker coalescing, a rebalancer-triggered
#                  replica read, and 503 + Retry-After with the fleet
#                  down
#  13. chaos      a bounded smoke of the S27 chaos layer: router + 2
#                  workers under two seeded fault classes (conn-refuse,
#                  truncate); the client contract must hold, every
#                  completed result must be byte-identical to the
#                  fault-free single-node oracle, faults must actually
#                  fire, and the matrix must be byte-identical across
#                  -j1, -j2, and a same-seed rerun
#  14. profile    a bounded smoke of the online miss-ratio profiler: a
#                  tier-1 scenario is recorded, replayed as a trace
#                  workload (metrics must be identical to the original
#                  run, curves byte-identical), and the online curves
#                  are cross-validated byte-for-byte against the offline
#                  stack algorithm over the recorded reference streams
set -eu
cd "$(dirname "$0")/.."

echo "==> gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt: the following files are not canonically formatted:" >&2
	echo "$fmt" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> allocs/cycle regression"
go test -run TestSteadyStateAllocFree -count=1 ./internal/perf/

echo "==> protolint ./..."
go run ./cmd/protolint ./...

echo "==> modelcheck -all -n 3"
go run ./cmd/modelcheck -all -n 3

echo "==> sweep -smoke"
go run ./cmd/sweep -smoke

echo "==> sweep -batch-smoke"
go run ./cmd/sweep -batch-smoke

echo "==> faultcampaign -smoke"
go run ./cmd/faultcampaign -smoke

echo "==> mimdserved -smoke"
go run ./cmd/mimdserved -smoke

echo "==> mimdrouter -smoke"
go run ./cmd/mimdrouter -smoke

echo "==> chaoscampaign -smoke"
go run ./cmd/chaoscampaign -smoke

echo "==> mimdsim -profile-smoke"
go run ./cmd/mimdsim -profile-smoke

echo "==> all checks passed"
