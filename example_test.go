package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// ExampleNewMachine assembles the paper's machine and runs the Section 5
// array-initialization scenario under both schemes, reproducing the
// 2-vs-1 bus-writes-per-element claim.
func ExampleNewMachine() {
	for _, proto := range []repro.Protocol{repro.RB(), repro.RWB(2)} {
		const cacheLines, elements = 64, 256
		m, err := repro.NewMachine(repro.MachineConfig{
			Protocol:         proto,
			CacheLines:       cacheLines,
			CheckConsistency: true,
		}, []repro.Agent{repro.NewArrayInit(0, elements)})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := m.Run(1_000_000); err != nil {
			log.Fatal(err)
		}
		writes := m.Metrics().Bus.Writes()
		for _, e := range m.Cache(0).Entries() {
			if proto.WritebackOnEvict(e.State, e.Dirty) {
				writes++ // write-backs still owed by resident lines
			}
		}
		fmt.Printf("%s: %.1f bus writes per element\n", proto.Name(), float64(writes)/elements)
	}
	// Output:
	// rb: 2.0 bus writes per element
	// rwb: 1.0 bus writes per element
}

// ExampleCheckProtocol machine-checks the Section 4 theorem for the RWB
// scheme with four caches.
func ExampleCheckProtocol() {
	res, err := repro.CheckProtocol(repro.RWB(2), 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rwb with 4 caches: %d reachable states, consistent\n", res.States)
	// Output:
	// rwb with 4 caches: 144 reachable states, consistent
}

// ExampleNewSpinlock contends two TTS spin-locks and counts acquisitions.
func ExampleNewSpinlock() {
	a := repro.NewSpinlock(repro.SpinlockConfig{Lock: 9, Strategy: repro.StrategyTTS, Iterations: 5})
	b := repro.NewSpinlock(repro.SpinlockConfig{Lock: 9, Strategy: repro.StrategyTTS, Iterations: 5})
	m, err := repro.NewMachine(repro.MachineConfig{Protocol: repro.RB(), CheckConsistency: true},
		[]repro.Agent{a, b})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("total acquisitions:", a.Acquisitions()+b.Acquisitions())
	// Output:
	// total acquisitions: 10
}

// ExampleRunExperiment regenerates a paper artifact by id.
func ExampleRunExperiment() {
	tb, err := repro.RunExperiment("section7-sbb", repro.ExperimentParams{})
	if err != nil {
		log.Fatal(err)
	}
	// The third row is the paper's worked example: 128 PEs at 1 MACS with
	// a 10% miss ratio need 12.8 MACS of bus bandwidth.
	fmt.Println(tb.Rows[2][0], "processors need", tb.Rows[2][3], "MACS")
	// Output:
	// 128 processors need 12.8 MACS
}
