// Benchmarks: one per paper artifact (Table 1-1, Figures 3-1, 5-1,
// 6-1..6-3, 7-1, the Section 7 sweep) plus the ablations and the
// simulator's own micro-benchmarks. Each artifact bench runs its
// experiment end to end and reports the headline metric the paper's
// comparison rests on via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation with numbers attached. The
// parameter-sweep-shaped artifacts (bus saturation, read/write mix, RWB
// threshold, hierarchy filtering) run through the internal/sweep engine
// with multi-seed replication and report engine throughput in jobs/s.
package repro

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/check"
	"repro/internal/coherence"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/memory"
	"repro/internal/stackdist"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// benchSweepEngine drives one registry experiment through the sweep
// engine with multi-seed replication, a cold in-memory store per
// iteration (so every job simulates), and GOMAXPROCS workers. The
// headline metric is engine throughput in jobs per second.
func benchSweepEngine(b *testing.B, id string, seeds []uint64) {
	spec, err := sweep.SpecFor(id, seeds, 1)
	if err != nil {
		b.Fatal(err)
	}
	jobs := 0
	for i := 0; i < b.N; i++ {
		eng := sweep.New(sweep.Options{Workers: runtime.GOMAXPROCS(0)})
		out, err := eng.Run(context.Background(), []sweep.Spec{spec})
		if err != nil {
			b.Fatal(err)
		}
		if out.Executed != len(out.Jobs) {
			b.Fatalf("cold store served %d of %d jobs from cache", out.CacheHits, len(out.Jobs))
		}
		jobs += len(out.Jobs)
	}
	b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs/s")
}

// --- Table 1-1 ---

func BenchmarkTable11CmStarEmulation(b *testing.B) {
	var last []experiments.Table11Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table11Rows(experiments.Params{})
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	// Report the curve's endpoints for the pde application.
	for _, r := range last {
		if r.App != "pde" {
			continue
		}
		switch r.CacheSize {
		case 256:
			b.ReportMetric(r.ReadMissPct, "readmiss256_%")
		case 2048:
			b.ReportMetric(r.ReadMissPct, "readmiss2048_%")
		}
	}
}

// --- Figures 3-1 and 5-1 (transition diagrams; micro) ---

func benchProtocolTransitions(b *testing.B, p coherence.Protocol) {
	states := p.States()
	var sink coherence.ProcOutcome
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := states[i%len(states)]
		sink = p.OnProc(s, 1, coherence.ProcEvent(i%2))
	}
	_ = sink
}

func BenchmarkFig31RBTransitions(b *testing.B)  { benchProtocolTransitions(b, coherence.RB{}) }
func BenchmarkFig51RWBTransitions(b *testing.B) { benchProtocolTransitions(b, coherence.NewRWB(2)) }

// --- Figures 6-1, 6-2, 6-3 (synchronization scenarios) ---

func benchFigure6(b *testing.B, run func() *experiments.Table) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(run().Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkFig61TestAndSetRB(b *testing.B)         { benchFigure6(b, experiments.Figure61) }
func BenchmarkFig62TestAndTestAndSetRB(b *testing.B)  { benchFigure6(b, experiments.Figure62) }
func BenchmarkFig63TestAndTestAndSetRWB(b *testing.B) { benchFigure6(b, experiments.Figure63) }

// --- Section 7: saturation sweep and Figure 7-1 multi-bus ---

func BenchmarkBusSaturationSweep(b *testing.B) {
	benchSweepEngine(b, "section7-saturation", []uint64{1, 2, 3})
}

func BenchmarkFig71MultiBus(b *testing.B) {
	var rows []experiments.Figure71Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure71Rows(experiments.Params{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Buses == 2 {
			total := r.Txns[0] + r.Txns[1]
			b.ReportMetric(float64(r.Txns[0])/float64(total), "bank0_share")
		}
	}
}

// --- Ablations ---

func BenchmarkArrayInit(b *testing.B) {
	var rows []experiments.ArrayInitRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ArrayInitRows(experiments.Params{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Protocol {
		case "rb":
			b.ReportMetric(r.BusWritesPerElement, "rb_writes/elem")
		case "rwb":
			b.ReportMetric(r.BusWritesPerElement, "rwb_writes/elem")
		}
	}
}

func BenchmarkLockContention(b *testing.B) {
	var rows []experiments.LockRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.LockRows(experiments.Params{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Protocol == "rb" {
			b.ReportMetric(r.TxnsPerAcq, r.Strategy+"_txns/acq")
		}
	}
}

func BenchmarkReadWriteMixSweep(b *testing.B) {
	benchSweepEngine(b, "ablation-mix", []uint64{1, 2, 3})
}

func BenchmarkRWBThreshold(b *testing.B) {
	benchSweepEngine(b, "ablation-threshold", []uint64{1, 2, 3})
}

func BenchmarkFaultRecovery(b *testing.B) {
	var rows []experiments.FaultRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.FaultRows(experiments.Params{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Fraction, r.Protocol+"_recovered")
	}
}

// --- Section 4: model checking ---

func benchModelCheck(b *testing.B, p coherence.Protocol, inv func(check.Snapshot) error) {
	var res check.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = check.Run(p, check.Options{Caches: 4, Invariant: inv})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.States), "states")
}

func BenchmarkModelCheckRB(b *testing.B)  { benchModelCheck(b, coherence.RB{}, check.RBLemma) }
func BenchmarkModelCheckRWB(b *testing.B) { benchModelCheck(b, coherence.NewRWB(2), check.RWBLemma) }

// --- Simulator micro-benchmarks ---

// BenchmarkMachineCycles measures raw simulation speed: cycles per second
// for a busy 8-PE machine.
func BenchmarkMachineCycles(b *testing.B) {
	agents := make([]workload.Agent, 8)
	for i := range agents {
		agents[i] = workload.NewHotspot(bus.Addr(i), 0) // runs forever, all hits after warmup
	}
	m, err := machine.New(machine.Config{Protocol: coherence.RB{}, CacheLines: 64}, agents)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHit measures the in-cache read hit path.
func BenchmarkCacheHit(b *testing.B) {
	mem := memory.New()
	bs := bus.New(mem)
	c := cache.MustNew(0, coherence.RB{}, cache.Config{Lines: 64})
	bs.Attach(0, c)
	bs.AttachRequester(0, c)
	// Install the line.
	c.Access(coherence.EvRead, 1, 0, coherence.ClassShared)
	bs.RequestSlot(0)
	if req, res, ok := bs.Tick(); ok {
		c.BusCompleted(req, res)
	}
	c.TakeResolved()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if done, _ := c.Access(coherence.EvRead, 1, 0, coherence.ClassShared); !done {
			b.Fatal("hit missed")
		}
	}
}

// BenchmarkBusTransaction measures one granted bus write per Tick.
func BenchmarkBusTransaction(b *testing.B) {
	mem := memory.New()
	bs := bus.New(mem)
	bs.AttachRequester(0, grantWrite{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.RequestSlot(0)
		if _, _, ok := bs.Tick(); !ok {
			b.Fatal("no grant")
		}
	}
}

type grantWrite struct{}

func (grantWrite) BusGrant(bank, banks int) (bus.Request, bool) {
	return bus.Request{Op: bus.OpWrite, Addr: 1, Data: 1}, true
}

// BenchmarkWorkloadGeneration measures the synthetic-application stream.
func BenchmarkWorkloadGeneration(b *testing.B) {
	app := workload.MustApp(workload.PDEProfile(), workload.DefaultLayout(), 0, 1, 0)
	var sink workload.Op
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = app.Next(workload.Result{})
	}
	_ = sink
}

// --- Extensions ---

func BenchmarkBarrierContention(b *testing.B) {
	var rows []experiments.BarrierRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.BarrierRows(experiments.Params{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Protocol == "rwb" || r.Protocol == "nocache" {
			b.ReportMetric(r.TxnsPerRound, r.Protocol+"_txns/round")
		}
	}
}

func BenchmarkHierarchyFiltering(b *testing.B) {
	benchSweepEngine(b, "extension-hier", []uint64{1, 2, 3})
}

func BenchmarkPrivateData(b *testing.B) {
	var rows []experiments.PrivateRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.PrivateRows(experiments.Params{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Protocol == "rb" || r.Protocol == "writethrough" {
			b.ReportMetric(r.BusPerRef, r.Protocol+"_bus/ref")
		}
	}
}

// BenchmarkStackDistance measures the Mattson profiler's throughput on a
// realistic locality stream.
func BenchmarkStackDistance(b *testing.B) {
	app := workload.MustApp(workload.PDEProfile(), workload.DefaultLayout(), 0, 1, 0)
	var addrs []bus.Addr
	for i := 0; i < 10000; i++ {
		addrs = append(addrs, app.Next(workload.Result{}).Addr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := stackdist.New()
		for _, a := range addrs {
			p.Touch(a)
		}
	}
}
