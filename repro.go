package repro

import (
	"repro/internal/bus"
	"repro/internal/check"
	"repro/internal/coherence"
	"repro/internal/experiments"
	"repro/internal/hier"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/workload"
)

// Core value types.
type (
	// Addr is a word address in the shared address space.
	Addr = bus.Addr
	// Word is the machine word.
	Word = bus.Word
)

// Machine assembly.
type (
	// MachineConfig describes a machine (processor count comes from the
	// agent list).
	MachineConfig = machine.Config
	// Machine is the assembled shared-bus multiprocessor.
	Machine = machine.Machine
	// Metrics is an aggregate counter snapshot.
	Metrics = machine.Metrics
	// ConsistencyError is an oracle violation: a stale read.
	ConsistencyError = machine.ConsistencyError
)

// NewMachine builds a machine running one agent per processing element.
func NewMachine(cfg MachineConfig, agents []Agent) (*Machine, error) {
	return machine.New(cfg, agents)
}

// Protocols.
type (
	// Protocol is a cache-consistency scheme as a pure transition table.
	Protocol = coherence.Protocol
	// State is a cache line's protocol state tag.
	State = coherence.State
)

// The protocol states of the paper's schemes (Figures 3-1 and 5-1).
const (
	StateInvalid    = coherence.Invalid
	StateReadable   = coherence.Readable
	StateLocal      = coherence.Local
	StateFirstWrite = coherence.FirstWrite
)

// RB returns the paper's RB (read-broadcast) scheme of Section 3.
func RB() Protocol { return coherence.RB{} }

// RWB returns the paper's RWB (read-write-broadcast) scheme of Section 5
// with the given write-streak threshold k (the paper uses 2).
func RWB(k uint8) Protocol { return coherence.NewRWB(k) }

// Goodman returns the write-once comparison baseline [GOO83].
func Goodman() Protocol { return coherence.Goodman{} }

// WriteThrough returns the write-through-invalidate baseline.
func WriteThrough() Protocol { return coherence.WriteThrough{} }

// CmStar returns the Table 1-1 emulation baseline (code and local data
// cachable, write-through local data, shared data uncached).
func CmStar() Protocol { return coherence.CmStar{} }

// NoCache returns the cacheless baseline.
func NoCache() Protocol { return coherence.NoCache{} }

// Illinois returns the Illinois/MESI-style comparison protocol
// (Papamarcos & Patel, ISCA 1984), with a clean-exclusive state chosen by
// the bus's shared line.
func Illinois() Protocol { return coherence.Illinois{} }

// ProtocolByName resolves "rb", "rwb", "goodman", "illinois",
// "writethrough", "cmstar", "nocache" or "rb-dirty".
func ProtocolByName(name string) (Protocol, error) { return coherence.ByName(name) }

// ProtocolNames lists the valid protocol names.
func ProtocolNames() []string {
	var names []string
	for _, k := range coherence.Kinds() {
		names = append(names, k.String())
	}
	return names
}

// Workloads.
type (
	// Agent is a reactive processor program.
	Agent = workload.Agent
	// Op is one processor operation.
	Op = workload.Op
	// AppProfile parameterizes the synthetic Table 1-1 application.
	AppProfile = workload.AppProfile
	// Layout assigns the shared/code/local address segments.
	Layout = workload.Layout
	// SpinlockConfig parameterizes a lock-contention agent.
	SpinlockConfig = workload.SpinlockConfig
	// Spinlock is the TS/TTS contention agent of the Figure 6 scenarios.
	Spinlock = workload.Spinlock
	// Strategy selects TS or TTS acquisition.
	Strategy = workload.Strategy
)

// Lock-acquisition strategies (Section 6).
const (
	StrategyTS  = workload.StrategyTS
	StrategyTTS = workload.StrategyTTS
)

// NewSpinlock builds a spin-lock agent; it panics on invalid
// configuration (use workload.NewSpinlock via the internal API for the
// error-returning form).
func NewSpinlock(cfg SpinlockConfig) *Spinlock { return workload.MustSpinlock(cfg) }

// NewApp builds one PE's synthetic-application agent (the Table 1-1
// workload).
func NewApp(profile AppProfile, layout Layout, pe int, seed uint64, maxRefs int) (Agent, error) {
	return workload.NewApp(profile, layout, pe, seed, maxRefs)
}

// PDEProfile and QuicksortProfile are the two Table 1-1 applications.
func PDEProfile() AppProfile       { return workload.PDEProfile() }
func QuicksortProfile() AppProfile { return workload.QuicksortProfile() }

// DefaultLayout returns the standard segment layout.
func DefaultLayout() Layout { return workload.DefaultLayout() }

// NewArrayInit builds the Section 5 array-initialization agent.
func NewArrayInit(base Addr, words int) Agent { return workload.NewArrayInit(base, words) }

// NewHotspot builds the shared-counter stressor.
func NewHotspot(addr Addr, increments int) Agent { return workload.NewHotspot(addr, increments) }

// NewRandom builds the uniform fuzzing agent used by the property tests.
func NewRandom(base Addr, words, ops int, writeFrac, tsFrac float64, seed uint64) Agent {
	return workload.NewRandom(base, words, ops, writeFrac, tsFrac, seed)
}

// TraceOf builds a replay agent from a fixed operation sequence.
func TraceOf(ops ...Op) Agent { return workload.NewTrace(ops...) }

// Experiments (the paper's tables and figures).
type (
	// Experiment is one reproducible paper artifact.
	Experiment = experiments.Experiment
	// ExperimentParams tunes a run (Seed, Scale).
	ExperimentParams = experiments.Params
	// Table is a rendered result table.
	Table = report.Table
)

// Experiments returns every registered paper artifact in paper order.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment executes one artifact by id ("table1-1", "fig6-2", ...).
func RunExperiment(id string, p ExperimentParams) (*Table, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(p)
}

// Hierarchical machines (the Section 8 future-work extension).
type (
	// HierConfig describes a two-level cluster machine.
	HierConfig = hier.Config
	// HierMachine is clusters of PEs behind inclusive cluster caches on
	// a global bus.
	HierMachine = hier.Machine
)

// NewHierMachine builds a hierarchical machine; agents[c][p] is the
// program of PE p in cluster c.
func NewHierMachine(cfg HierConfig, agents [][]Agent) (*HierMachine, error) {
	return hier.New(cfg, agents)
}

// Model checking (the Section 4 proof, mechanized).
type (
	// CheckOptions configures an exhaustive protocol exploration.
	CheckOptions = check.Options
	// CheckResult summarizes an exploration.
	CheckResult = check.Result
)

// CheckProtocol exhaustively verifies a protocol's consistency for n
// caches, applying the matching configuration lemma for the paper's
// schemes.
func CheckProtocol(p Protocol, n int) (CheckResult, error) {
	opt := check.Options{Caches: n}
	switch p.Name() {
	case "rb":
		opt.Invariant = check.RBLemma
	case "rwb":
		opt.Invariant = check.RWBLemma
	}
	return check.Run(p, opt)
}
