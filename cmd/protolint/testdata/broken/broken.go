// Package broken is a protolint exit-code fixture: it parses (so gofmt
// and the repo-wide comment tooling stay happy) but fails type-checking,
// driving the linter's loader down its error path — exit status 2,
// distinct from exit 1 (real findings).
package broken

var X = undefinedIdentifier
