// Command protolint is the repo's static verification layer: a
// standard-library-only analysis pass over protocol tables and simulator
// code. It complements cmd/modelcheck (which proves the dynamic Section 4
// consistency properties) with compile-time guarantees:
//
//   - exhaustive: switches over coherence.State, the event kinds, and
//     every other module-defined enum must cover all constants or carry
//     an explicit default, so adding a protocol (Illinois, Goodman,
//     write-through, ...) cannot silently fall through existing code;
//   - determinism: map-iteration order must not reach simulator state,
//     stats output or trace emission, and simulation packages must not
//     consult time.Now, wall-clock timers or math/rand — BENCH
//     comparisons and the Figure 6-x reproductions depend on
//     bit-identical runs;
//   - tableaudit: every protocol registered in coherence.Kinds() is
//     checked for totality, reachability and outcome sanity;
//   - phaseaudit: //phase:bus|snoop|cpu|any annotations declare which
//     cycle-loop phase owns each mutable simulator field, and every
//     write reached from a phase that does not own it is flagged — the
//     static precondition for parallelizing the core by bus bank;
//   - allocaudit: functions marked //hotpath:allocfree may not contain
//     heap-allocating constructs, the static twin of the runtime
//     TestSteadyStateAllocFree pin;
//   - syncaudit: fields accessed both atomically and plainly, and locks
//     acquired in inconsistent order, are flagged in the concurrent
//     harness layers (serve, sweep, fault campaigns).
//
// Usage:
//
//	protolint ./...            # analyze the whole module (run from its root)
//	protolint ./internal/cache # one package
//	protolint -tables=false ./...
//	protolint -format=json ./... # one JSON object per finding (JSON Lines)
//
// Diagnostics print in go vet's file:line:col format; -format=json emits
// machine-readable objects ({analyzer, file, line, col, message,
// suppressed}) including suppressed findings, so CI annotation tooling
// sees waivers too. A finding can be waived with a "//lint:ignore reason"
// comment on the flagged line or the line above it ("//lint:ignore
// <analyzer> reason" scopes the waiver to one analyzer). Exit status:
// 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its process edges cut off, so the exit-code contract
// (0 clean, 1 findings, 2 load error) is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("protolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tables := fs.Bool("tables", true, "audit the transition tables of all registered protocols")
	format := fs.String("format", "text", "output format: text or json (JSON Lines, includes suppressed findings)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: protolint [-tables=false] [-format=text|json] <packages> (e.g. ./...)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "protolint: unknown format %q (want text or json)\n", *format)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "protolint:", err)
		return 2
	}
	diags, err := lint.Run(lint.Config{
		Dirs:              dirs,
		SkipTables:        !*tables,
		IncludeSuppressed: *format == "json",
	})
	if err != nil {
		fmt.Fprintln(stderr, "protolint:", err)
		return 2
	}
	if *format == "json" {
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "protolint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	// Suppressed findings are informational (json only); only live ones
	// fail the run.
	if n := lint.Unsuppressed(diags); n > 0 {
		fmt.Fprintf(stderr, "protolint: %d finding(s) in %d package dir(s)\n", n, len(dirs))
		return 1
	}
	return 0
}
