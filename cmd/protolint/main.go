// Command protolint is the repo's static verification layer: a
// standard-library-only analysis pass over protocol tables and simulator
// code. It complements cmd/modelcheck (which proves the dynamic Section 4
// consistency properties) with compile-time guarantees:
//
//   - exhaustive: switches over coherence.State, the event kinds, and
//     every other module-defined enum must cover all constants or carry
//     an explicit default, so adding a protocol (Illinois, Goodman,
//     write-through, ...) cannot silently fall through existing code;
//   - determinism: map-iteration order must not reach simulator state,
//     stats output or trace emission, and simulation packages must not
//     consult time.Now or math/rand — BENCH comparisons and the
//     Figure 6-x reproductions depend on bit-identical runs;
//   - tableaudit: every protocol registered in coherence.Kinds() is
//     checked for totality, reachability and outcome sanity.
//
// Usage:
//
//	protolint ./...            # analyze the whole module (run from its root)
//	protolint ./internal/cache # one package
//	protolint -tables=false ./...
//
// Diagnostics print in go vet's file:line:col format. A finding can be
// waived with a "//lint:ignore reason" comment on the flagged line or the
// line above it. Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	tables := flag.Bool("tables", true, "audit the transition tables of all registered protocols")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: protolint [-tables=false] <packages> (e.g. ./...)")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "protolint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(lint.Config{Dirs: dirs, SkipTables: !*tables})
	if err != nil {
		fmt.Fprintln(os.Stderr, "protolint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "protolint: %d finding(s) in %d package dir(s)\n", len(diags), len(dirs))
		os.Exit(1)
	}
}
