package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the JSON golden file")

const fixtures = "../../internal/lint/testdata"

// TestExitCodes pins the CLI contract check.sh depends on: 0 clean,
// 1 findings, 2 load/parse error — a broken package and a real finding
// must be distinguishable.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{"-tables=false", filepath.Join(fixtures, "clean")}, 0},
		{"findings", []string{"-tables=false", filepath.Join(fixtures, "syncaudit")}, 1},
		{"load error", []string{"-tables=false", "testdata/broken"}, 2},
		{"bad flag", []string{"-nonsense"}, 2},
		{"bad format", []string{"-format=yaml", filepath.Join(fixtures, "clean")}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestJSONGolden pins the machine-readable output: one object per
// finding, including suppressed ones (suppressed findings do not affect
// the exit code).
func TestJSONGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-tables=false", "-format=json", filepath.Join(fixtures, "ignorescope")}
	if got := run(args, &stdout, &stderr); got != 1 {
		t.Fatalf("run(%v) = %d, want 1 (one unsuppressed finding)\nstderr:\n%s", args, got, stderr.String())
	}
	golden := filepath.Join("testdata", "golden", "ignorescope.jsonl")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (re-bless with -update): %v", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("JSON output drifted from golden (re-bless with -update)\ngot:\n%s\nwant:\n%s", stdout.Bytes(), want)
	}
}
