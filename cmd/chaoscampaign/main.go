// Command chaoscampaign runs the S26 cluster chaos campaign: for each
// (chaos class, intensity) cell it boots an embedded fleet — router +
// N in-process workers — injects the cell's seeded fault plan into the
// router↔worker transport (or drives the pause/crash process schedule),
// pushes a deterministic traffic run through the front door, and
// classifies the cell against the fault-free single-node oracle:
//
//   - masked:   every request answered 200 on the first attempt,
//     every result byte-identical to the oracle — the fleet
//     absorbed the faults invisibly;
//   - degraded: the contract held (only 200 / 429 / 503-with-
//     Retry-After, nothing hung) but the seams showed —
//     retries, failovers, attempt timeouts, opened breakers,
//     or shed requests;
//   - failed:   a contract violation — a forbidden status, a hang past
//     the deadline, or a completed result whose bytes differ
//     from the oracle's.
//
// Usage:
//
//	chaoscampaign                                   # all classes at default intensity
//	chaoscampaign -classes conn-refuse,burst-5xx -intensities low,default,high
//	chaoscampaign -seed 7 -n 96 -workers 4 -j 4 -o matrix.txt
//	chaoscampaign -list-classes
//	chaoscampaign -smoke                            # CI gate: 2 workers, 2 classes, -j1 == -j2 == rerun
//
// Determinism: a cell's traffic is sequential, its faults are a pure
// function of (seed, class, intensity, transport sequence number),
// health probing is driven by the traffic loop (never a wall-clock
// ticker), request hedging stays off, and classification reads only
// deterministic observables — statuses, retry counts, router counters,
// and result bytes. The same seed therefore renders the same matrix at
// any -j and on every rerun; `-smoke` pins exactly that.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/retry"
	"repro/internal/serve"
)

func main() {
	var (
		classList = flag.String("classes", "", "comma-separated chaos classes (default all); see -list-classes")
		intenList = flag.String("intensities", "default", "comma-separated intensities: low, default, high")
		seed      = flag.Uint64("seed", 1, "campaign seed; same seed = same fault plan = same matrix")
		requests  = flag.Int("n", 48, "traffic requests per cell")
		workers   = flag.Int("workers", 3, "workers per cell fleet (at least 2)")
		jobs      = flag.Int("j", runtime.NumCPU(), "cells run in parallel (each cell is internally sequential)")
		outPath   = flag.String("o", "", "write the matrix here instead of stdout")
		listCls   = flag.Bool("list-classes", false, "list chaos classes and exit")
		smoke     = flag.Bool("smoke", false, "bounded self-check: 2 workers, 2 transport classes; -j1, -j2, and a same-seed rerun must render byte-identical matrices with no failed cell")
	)
	flag.Parse()

	if *listCls {
		for _, c := range chaos.Classes() {
			kind := "transport"
			if c.Process() {
				kind = "process"
			}
			fmt.Printf("%-13s %s\n", c, kind)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *smoke {
		if err := runSmoke(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "chaoscampaign -smoke:", err)
			os.Exit(1)
		}
		fmt.Println("chaoscampaign smoke ok: -j1, -j2, and same-seed rerun matrices byte-identical; contract held and results byte-matched the oracle in every cell")
		return
	}

	cfg, err := buildConfig(*classList, *intenList, *seed, *requests, *workers)
	if err != nil {
		fatal(err)
	}
	results, err := runCampaign(ctx, cfg, *jobs)
	if err != nil {
		fatal(err)
	}
	matrix := renderMatrix(results)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(matrix), 0o644); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(matrix)
	}
	for _, cell := range results {
		if cell.outcome() == outcomeFailed {
			fmt.Fprintf(os.Stderr, "chaoscampaign: cell %s/%s failed its contract\n", cell.class, cell.intensity)
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaoscampaign:", err)
	os.Exit(1)
}

// config is one campaign's resolved shape.
type config struct {
	classes     []chaos.Class
	intensities []chaos.Intensity
	seed        uint64
	requests    int
	workers     int
}

func buildConfig(classList, intenList string, seed uint64, requests, workers int) (config, error) {
	cfg := config{seed: seed, requests: requests, workers: workers}
	if classList == "" {
		cfg.classes = chaos.Classes()
	} else {
		for _, name := range splitList(classList) {
			c, err := chaos.ParseClass(name)
			if err != nil {
				return cfg, err
			}
			cfg.classes = append(cfg.classes, c)
		}
	}
	for _, name := range splitList(intenList) {
		in, err := chaos.ParseIntensity(name)
		if err != nil {
			return cfg, err
		}
		cfg.intensities = append(cfg.intensities, in)
	}
	if len(cfg.intensities) == 0 {
		cfg.intensities = []chaos.Intensity{chaos.Default}
	}
	if cfg.workers < 2 {
		return cfg, fmt.Errorf("need at least 2 workers (the contract is stated for fleets with a healthy successor); got %d", cfg.workers)
	}
	if cfg.requests < 8 {
		return cfg, fmt.Errorf("need at least 8 requests per cell; got %d", cfg.requests)
	}
	return cfg, nil
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(list string) []string {
	var out []string
	for _, part := range strings.Split(list, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Cell tuning. AttemptTimeout must comfortably exceed both the plan's
// worst latency spike (120ms) and a cold engine run, and must always
// fire against a paused worker — both hold by orders of magnitude, so
// the classification the timeouts feed stays deterministic.
const (
	attemptTimeout = 2 * time.Second
	probeEvery     = 2 // traffic requests per health-probe round
	clientTimeout  = 15 * time.Second
	clientAttempts = 6
)

// specMix is the deterministic traffic mix, cycled by request index —
// the same quick-experiment specs loadgen drives, so a campaign cell is
// a faithful miniature of the benchmark workload.
func specMix() []string {
	return []string{
		`{"kind":"experiment","experiment":"fig3-1","seeds":[1]}`,
		`{"kind":"experiment","experiment":"fig5-1","seeds":[1]}`,
		`{"kind":"experiment","experiment":"fig6-1","seeds":[2]}`,
		`{"kind":"experiment","experiment":"fig6-2","seeds":[1]}`,
	}
}

// canonical extracts the deterministic content of a result: the merged
// tables and the rendered report. Routing metadata (cache status, wall
// time, executed counts) legitimately varies with failover and caching;
// the tables must not.
func canonical(r serve.Response) string {
	return strings.Join(r.Tables, "\x1e") + "\x1f" + r.Report
}

// oracleRun executes every distinct spec once on a single fault-free
// worker and returns the canonical bytes per spec — the byte-identity
// reference every cell's completed results are held to.
func oracleRun(mix []string) (map[string]string, error) {
	srv := serve.New(serve.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	oracle := make(map[string]string, len(mix))
	for _, spec := range mix {
		resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(spec))
		if err != nil {
			return nil, fmt.Errorf("oracle run: %v", err)
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, fmt.Errorf("oracle run: %v", rerr)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("oracle run: status %d for %s: %s", resp.StatusCode, spec, strings.TrimSpace(string(body)))
		}
		var r serve.Response
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, fmt.Errorf("oracle run: decoding response: %v", err)
		}
		oracle[spec] = canonical(r)
	}
	return oracle, nil
}

// outcome labels, in increasing severity.
const (
	outcomeMasked   = "masked"
	outcomeDegraded = "degraded"
	outcomeFailed   = "failed"
)

// cellResult is one (class, intensity) cell's classified run.
type cellResult struct {
	class     chaos.Class
	intensity chaos.Intensity

	requests  int
	completed int // answered 200 with oracle-matched bytes
	shed      int // retry budget exhausted on 429/503-with-Retry-After
	retries   int // client-side retry attempts across all requests
	injected  uint64

	failovers       int64
	attemptTimeouts int64
	breakerOpens    int64
	noWorker        int64
	truncated       int64

	mismatches int
	violations []string
}

func (c cellResult) outcome() string {
	if len(c.violations) > 0 || c.mismatches > 0 {
		return outcomeFailed
	}
	if c.shed+c.retries > 0 ||
		c.failovers+c.attemptTimeouts+c.breakerOpens+c.noWorker+c.truncated > 0 {
		return outcomeDegraded
	}
	return outcomeMasked
}

// runCampaign computes the oracle once, then runs every cell — up to
// `jobs` concurrently. Cells share nothing (own fleet, own ports, own
// transport), so parallelism cannot change any cell's result; the
// returned slice is in class-major, intensity-minor order regardless
// of completion order.
func runCampaign(ctx context.Context, cfg config, jobs int) ([]cellResult, error) {
	mix := specMix()
	oracle, err := oracleRun(mix)
	if err != nil {
		return nil, err
	}

	type cellKey struct {
		class     chaos.Class
		intensity chaos.Intensity
	}
	var keys []cellKey
	for _, c := range cfg.classes {
		for _, in := range cfg.intensities {
			keys = append(keys, cellKey{c, in})
		}
	}
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(keys) {
		jobs = len(keys)
	}

	results := make([]cellResult, len(keys))
	errs := make([]error, len(keys))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				key := keys[i]
				results[i], errs[i] = runCell(ctx, cfg, key.class, key.intensity, mix, oracle)
				if errs[i] == nil {
					fmt.Fprintf(os.Stderr, "chaoscampaign: cell %s/%s: %s\n",
						key.class, key.intensity, results[i].outcome())
				}
			}
		}()
	}
	for i := range keys {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// cellWorker is one embedded worker: a serve.Server behind a crash gate
// on its own loopback listener. Pause goes through the server's real
// pause gate (connections accepted, nothing answers — probes included);
// crash aborts every connection at the gate while the server object,
// and with it the store, survives for the restart.
type cellWorker struct {
	id   string
	srv  *serve.Server
	gate *crashGate
	hs   *http.Server
	url  string
}

// crashGate fronts a worker's handler; while crashed, every request —
// traffic and health probes alike — dies as an aborted connection, the
// closest in-process analog of a killed process's RSTs.
type crashGate struct {
	inner   http.Handler
	crashed atomic.Bool
}

func (g *crashGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.crashed.Load() {
		panic(http.ErrAbortHandler)
	}
	g.inner.ServeHTTP(w, r)
}

// strike applies a scheduled process fault; heal undoes it. A restart
// reuses the same server and listener: the store is intact, exactly the
// rolling-restart profile the class models.
func strike(w *cellWorker, pause bool) {
	if pause {
		w.srv.Pause()
	} else {
		w.gate.crashed.Store(true)
	}
}

func heal(w *cellWorker, pause bool) {
	if pause {
		w.srv.Resume()
	} else {
		w.gate.crashed.Store(false)
	}
}

// runCell boots one embedded fleet under the cell's plan and drives the
// traffic run. The loop is strictly sequential and owns every clock the
// cell's classification can see: transport faults are keyed by the
// request sequence, process faults fire at fixed request indices, and
// health probing (which is also the breakers' cooldown tick) runs every
// probeEvery requests instead of on a wall-clock ticker.
func runCell(ctx context.Context, cfg config, class chaos.Class, in chaos.Intensity, mix []string, oracle map[string]string) (cellResult, error) {
	res := cellResult{class: class, intensity: in, requests: cfg.requests}

	fleet := make([]cluster.Worker, cfg.workers)
	workers := make([]*cellWorker, cfg.workers)
	defer func() {
		for _, w := range workers {
			if w != nil {
				w.hs.Close()
			}
		}
	}()
	for i := range workers {
		id := fmt.Sprintf("w%d", i+1)
		srv := serve.New(serve.Options{Worker: true, WorkerID: id})
		gate := &crashGate{inner: srv.Handler()}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return res, err
		}
		hs := &http.Server{Handler: gate}
		go hs.Serve(ln)
		w := &cellWorker{id: id, srv: srv, gate: gate, hs: hs, url: "http://" + ln.Addr().String()}
		workers[i] = w
		fleet[i] = cluster.Worker{ID: id, URL: w.url}
	}

	plan := chaos.Plan{Seed: cfg.seed, Class: class, Intensity: in}
	tr := &chaos.Transport{Base: &http.Transport{}, Plan: plan}
	idOpts := serve.Options{}
	router, err := cluster.New(cluster.Options{
		Workers:   fleet,
		RequestID: func(body []byte) (string, error) { return serve.ComputeRequestID(body, idOpts) },
		Client:    &http.Client{Transport: tr},
		// Fast, deterministic failure detection: one failed probe round
		// marks a worker down, one stalled attempt fails over. Hedging
		// stays off — a hedged attempt would consume plan sequence
		// numbers nondeterministically.
		AttemptTimeout: attemptTimeout,
		FailThreshold:  1,
		ProbeTimeout:   250 * time.Millisecond,
		ProbeRetries:   1,
		ProbeBackoff:   20 * time.Millisecond,
	})
	if err != nil {
		return res, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	front := &http.Server{Handler: router.Handler()}
	go front.Serve(ln)
	defer front.Close()
	base := "http://" + ln.Addr().String()

	events := plan.ProcSchedule(uint64(cfg.requests), cfg.workers)
	res.injected += uint64(len(events))
	client := &http.Client{Timeout: clientTimeout, Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	for i := 0; i < cfg.requests; i++ {
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		seq := uint64(i)
		for _, ev := range events {
			if ev.Until == seq {
				heal(workers[ev.Worker], ev.Pause)
			}
			if ev.At == seq {
				strike(workers[ev.Worker], ev.Pause)
			}
		}
		if i%probeEvery == 0 {
			router.ProbeOnce(ctx)
		}
		spec := mix[i%len(mix)]
		out := issueOne(ctx, client, base, spec, seq)
		res.retries += out.retries
		switch {
		case out.violation != "":
			res.violations = append(res.violations, fmt.Sprintf("request %d: %s", i, out.violation))
		case out.status == http.StatusOK:
			var r serve.Response
			if err := json.Unmarshal(out.body, &r); err != nil {
				res.violations = append(res.violations, fmt.Sprintf("request %d: unparseable 200 body: %v", i, err))
			} else if canonical(r) != oracle[spec] {
				res.mismatches++
			} else {
				res.completed++
			}
		default:
			res.shed++
		}
	}
	// The schedule heals every fault before the run ends; make that so
	// even if the loop bailed early on ctx cancellation.
	for _, ev := range events {
		heal(workers[ev.Worker], ev.Pause)
	}

	st := tr.Stats()
	res.injected += st.Faults()
	m := router.Metrics()
	res.failovers = m.Failovers()
	res.attemptTimeouts = m.AttemptTimeouts()
	res.breakerOpens = m.BreakerOpens()
	res.noWorker = m.NoWorker()
	res.truncated = m.TruncatedStreams()
	return res, nil
}

// reqOutcome is one traffic request's terminal state after client-side
// retries.
type reqOutcome struct {
	status    int
	retries   int
	body      []byte
	violation string
}

// issueOne drives one request through the router under the shared retry
// policy, seeded by the request index so reruns sleep the same
// schedule. Only 200, 429, and 503-with-Retry-After are inside the
// contract; 429/503 are retried on the policy's own seeded backoff (the
// Retry-After value is verified as present, not slept on — cells must
// stay fast and their waits seed-derived). Anything else — a forbidden
// status, a transport error from the chaos-free front hop, a deadline
// overrun — is a contract violation.
func issueOne(ctx context.Context, client *http.Client, base, spec string, seq uint64) reqOutcome {
	var out reqOutcome
	pol := retry.Policy{
		Base:        25 * time.Millisecond,
		Cap:         400 * time.Millisecond,
		MaxAttempts: clientAttempts,
		Seed:        seq,
	}
	first := true
	retry.Do(ctx, pol, func(ctx context.Context) error {
		if !first {
			out.retries++
		}
		first = false
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/run", strings.NewReader(spec))
		if err != nil {
			out.violation = err.Error()
			return retry.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			out.violation = fmt.Sprintf("transport error from router: %v", err)
			return retry.Permanent(err)
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			out.violation = fmt.Sprintf("reading router response: %v", rerr)
			return retry.Permanent(rerr)
		}
		out.status = resp.StatusCode
		switch resp.StatusCode {
		case http.StatusOK:
			out.body = body
			return nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if resp.Header.Get("Retry-After") == "" {
				out.violation = fmt.Sprintf("%d without Retry-After", resp.StatusCode)
				return retry.Permanent(fmt.Errorf("missing Retry-After"))
			}
			return fmt.Errorf("shed with %d", resp.StatusCode)
		default:
			out.violation = fmt.Sprintf("contract-breaking status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
			return retry.Permanent(fmt.Errorf("status %d", resp.StatusCode))
		}
	})
	return out
}

// renderMatrix renders the campaign's classification table, one row per
// cell in class-major order, with any violations appended.
func renderMatrix(cells []cellResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s %-9s %4s %5s %4s %7s %9s %8s %8s %8s %8s  %s\n",
		"class", "intensity", "reqs", "ok", "shed", "retries", "failovers", "timeouts", "breakers", "injected", "noworker", "outcome")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-13s %-9s %4d %5d %4d %7d %9d %8d %8d %8d %8d  %s\n",
			c.class, c.intensity, c.requests, c.completed, c.shed, c.retries,
			c.failovers, c.attemptTimeouts, c.breakerOpens, c.injected, c.noWorker, c.outcome())
	}
	for _, c := range cells {
		if c.mismatches > 0 {
			fmt.Fprintf(&b, "cell %s/%s: %d result(s) diverged from the oracle bytes\n", c.class, c.intensity, c.mismatches)
		}
		for _, v := range c.violations {
			fmt.Fprintf(&b, "cell %s/%s: %s\n", c.class, c.intensity, v)
		}
	}
	return b.String()
}

// runSmoke is the CI gate: 2 workers, the two purely transport-level
// classes at default intensity, a short sequential run per cell. The
// matrix must be byte-identical between -j1 and -j2 and across a
// same-seed rerun, every cell must have actually drawn faults, and no
// cell may break the contract or the oracle byte-identity. Process
// classes are pinned by the cluster package's own tests; keeping the
// smoke to transport classes bounds its wall time by work, not by
// pause windows.
func runSmoke(ctx context.Context) error {
	cfg := config{
		classes:     []chaos.Class{chaos.ConnRefuse, chaos.Truncate},
		intensities: []chaos.Intensity{chaos.Default},
		seed:        1,
		requests:    24,
		workers:     2,
	}
	run := func(jobs int) (string, []cellResult, error) {
		res, err := runCampaign(ctx, cfg, jobs)
		if err != nil {
			return "", nil, err
		}
		return renderMatrix(res), res, nil
	}
	serial, cells, err := run(1)
	if err != nil {
		return err
	}
	parallel, _, err := run(2)
	if err != nil {
		return err
	}
	if serial != parallel {
		return fmt.Errorf("-j2 matrix differs from -j1:\n--- j1 ---\n%s--- j2 ---\n%s", serial, parallel)
	}
	rerun, _, err := run(2)
	if err != nil {
		return err
	}
	if rerun != serial {
		return fmt.Errorf("same-seed rerun rendered a different matrix:\n--- first ---\n%s--- rerun ---\n%s", serial, rerun)
	}
	for _, c := range cells {
		if c.outcome() == outcomeFailed {
			return fmt.Errorf("cell %s/%s failed:\n%s", c.class, c.intensity, renderMatrix([]cellResult{c}))
		}
		if c.injected == 0 {
			return fmt.Errorf("cell %s/%s drew no faults; the smoke would be vacuous", c.class, c.intensity)
		}
	}
	return nil
}
