// Command mimdserved is the S24 simulation-as-a-service daemon: an HTTP
// front end over the S21 sweep engine. Clients POST experiment, sweep,
// or fault-campaign specs as JSON; the daemon validates them against
// the registries, coalesces identical concurrent submissions, executes
// them behind an admission controller (bounded queue, 429 +
// Retry-After on overload), serves repeats straight from the result
// store, and streams progress as SSE or JSONL.
//
// Usage:
//
//	mimdserved -addr 127.0.0.1:8471 -cache-dir .servecache
//	mimdserved -max-inflight 4 -queue-depth 128 -job-timeout 90s
//	mimdserved -smoke          # CI gate: boot, run, re-run from cache, drain
//
// SIGINT drains gracefully: new submissions are refused with 503,
// running flights finish (or are cancelled at -drain-timeout with their
// completed jobs journaled for resume), then the process exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// traceFlags collects repeatable -trace name=path arguments.
type traceFlags []string

func (t *traceFlags) String() string     { return strings.Join(*t, ",") }
func (t *traceFlags) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8471", "listen address")
		cacheDir  = flag.String("cache-dir", "", "memoize job results in this sweep store directory (empty = in-memory, no persistence)")
		workers   = flag.Int("j", runtime.NumCPU(), "worker pool size per engine run")
		inflight  = flag.Int("max-inflight", 2, "max concurrent engine runs")
		queue     = flag.Int("queue-depth", 64, "max submissions waiting for a run slot before 429s; negative = no queue")
		jobTO     = flag.Duration("job-timeout", 0, "per-job wall-clock budget; requests may lower it but never raise it; 0 disables")
		retryHint = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		maxJobs   = flag.Int("max-jobs", 10000, "reject specs expanding past this many jobs")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGINT drain waits before cancelling running flights")
		smoke     = flag.Bool("smoke", false, "bounded self-check: boot on a loopback port, run an experiment, verify the cache hit and a clean drain")
		worker    = flag.Bool("worker", false, "run as a cluster worker: enable /shardstats and the /v1/replica pull API mimdrouter uses")
		stats     = flag.Bool("shard-stats", false, "enable /shardstats latency digests without the replica API")
		shards    = flag.Int("shards", 0, "virtual shard space size for latency digests; must match the router's; 0 = default")
		workerID  = flag.String("worker-id", "", "this worker's id in cluster documents")
	)
	var traces traceFlags
	flag.Var(&traces, "trace", "register a trace workload as name=path (repeatable); runnable as experiment \"trace-<name>\"")
	flag.Parse()

	for _, arg := range traces {
		if err := experiments.RegisterTraceFile(arg); err != nil {
			fatal(err)
		}
	}

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "mimdserved -smoke:", err)
			os.Exit(1)
		}
		fmt.Println("mimdserved smoke ok: cold run executed, warm run served from cache, metrics and drain verified")
		return
	}

	opts := serve.Options{
		Workers:     *workers,
		MaxInFlight: *inflight,
		QueueDepth:  *queue,
		JobTimeout:  *jobTO,
		RetryAfter:  *retryHint,
		MaxJobs:     *maxJobs,
		Worker:      *worker,
		ShardStats:  *stats,
		NumShards:   *shards,
		WorkerID:    *workerID,
	}
	if *cacheDir != "" {
		ds, err := sweep.OpenDirStore(*cacheDir)
		if err != nil {
			fatal(err)
		}
		opts.Store = ds
	}
	srv := serve.New(opts)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}

	// SIGINT starts the drain; a second ^C kills the process the usual
	// way once stop() restores default handling.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	errs := make(chan error, 1)
	go func() { errs <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "mimdserved: listening on http://%s (store=%s inflight=%d queue=%d)\n",
		ln.Addr(), storeDesc(*cacheDir), *inflight, *queue)

	select {
	case err := <-errs:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "mimdserved: draining (new submissions get 503; ^C again to kill)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "mimdserved: drain deadline hit; running flights cancelled, completed jobs are journaled for resume")
	}
	hs.Shutdown(context.Background())
	fmt.Fprintln(os.Stderr, "mimdserved: stopped")
}

func storeDesc(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mimdserved:", err)
	os.Exit(1)
}

// runSmoke boots the daemon on a loopback port and walks the service
// contract end to end: a cold run executes, an identical warm run is a
// pure cache hit with identical tables, /healthz and /metrics answer,
// and the drain completes cleanly.
func runSmoke() error {
	srv := serve.New(serve.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	spec := `{"kind":"experiment","experiment":"fig7-1","seeds":[1,2]}`
	cold, err := postRun(base, spec)
	if err != nil {
		return err
	}
	if cold.Cache != "miss" || cold.Executed == 0 || len(cold.Tables) != 1 {
		return fmt.Errorf("cold run: want a full miss with one table, got %+v", cold)
	}
	warm, err := postRun(base, spec)
	if err != nil {
		return err
	}
	if warm.Cache != "hit" || warm.Executed != 0 {
		return fmt.Errorf("warm run: want a pure cache hit, got cache=%s executed=%d", warm.Cache, warm.Executed)
	}
	if warm.Tables[0] != cold.Tables[0] {
		return fmt.Errorf("warm table differs from cold")
	}

	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", hresp.StatusCode)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		return err
	}
	for _, want := range []string{"mimdserved_engine_runs_total 1", "mimdserved_store_served_total 1", "mimdserved_cache_hit_ratio"} {
		if !strings.Contains(string(mbody), want) {
			return fmt.Errorf("metrics missing %q", want)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %v", err)
	}
	return hs.Shutdown(context.Background())
}

// postRun submits a spec to /v1/run and decodes the result document.
func postRun(base, spec string) (serve.Response, error) {
	var out serve.Response
	resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(spec))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("decoding /v1/run response (status %d): %v", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("/v1/run: status %d: %s", resp.StatusCode, out.Error)
	}
	return out, nil
}
