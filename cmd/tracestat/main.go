// Command tracestat summarizes a reference trace (binary MCT1 or line
// text): record counts by kind, PE count, distinct addresses, and the
// class mix — the numbers Table 1-1's columns are made of.
//
// Usage:
//
//	tracestat refs.mct
//	tracestat -text scenario.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/coherence"
	"repro/internal/stackdist"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	text := flag.Bool("text", false, "parse the line format instead of binary")
	missCurve := flag.Bool("misscurve", false,
		"run Mattson's stack algorithm over the trace and print the exact fully-associative LRU miss curve")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-text] <file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var recs []trace.Record
	if *text {
		recs, err = trace.ParseText(f)
	} else {
		recs, err = trace.NewReader(f).ReadAll()
	}
	if err != nil {
		fatal(err)
	}

	s := trace.Summarize(recs)
	fmt.Printf("records    %d\n", s.Records)
	fmt.Printf("PEs        %d\n", s.PEs)
	fmt.Printf("addresses  %d distinct\n", s.Addresses)
	fmt.Printf("reads      %d\n", s.Reads)
	fmt.Printf("writes     %d\n", s.Writes)
	fmt.Printf("test-sets  %d\n", s.TestSets)
	fmt.Printf("computes   %d\n", s.Computes)
	fmt.Printf("halts      %d\n", s.Halts)
	memRefs := s.Reads + s.Writes + s.TestSets
	if memRefs > 0 {
		for _, c := range []coherence.Class{coherence.ClassCode, coherence.ClassLocal, coherence.ClassShared, coherence.ClassUnknown} {
			if n := s.ByClass[c]; n > 0 {
				fmt.Printf("class %-8s %d (%.1f%%)\n", c, n, 100*float64(n)/float64(memRefs))
			}
		}
	}

	if *missCurve {
		printMissCurves(recs)
	}
}

// printMissCurves profiles each PE's reference stream separately (private
// caches see private streams) with Mattson's stack algorithm.
func printMissCurves(recs []trace.Record) {
	profilers := map[int]*stackdist.Profiler{}
	order := []int{}
	for _, r := range recs {
		switch r.Op.Kind {
		case workload.OpRead, workload.OpWrite, workload.OpTestSet:
			p := profilers[r.PE]
			if p == nil {
				p = stackdist.New()
				profilers[r.PE] = p
				order = append(order, r.PE)
			}
			p.Touch(r.Op.Addr)
		default:
			// Computes and halts touch no addresses.
		}
	}
	for _, pe := range order {
		p := profilers[pe]
		fmt.Printf("\nPE %d: %d refs, footprint %d, %d cold misses\n",
			pe, p.Refs(), p.Footprint(), p.Colds())
		fmt.Printf("%8s  %10s  %s\n", "lines", "misses", "miss ratio")
		for _, pt := range p.Curve(stackdist.PowersOfTwo(6, 12)) {
			fmt.Printf("%8d  %10d  %.4f\n", pt.Lines, pt.Misses, pt.MissRatio)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracestat:", err)
	os.Exit(1)
}
