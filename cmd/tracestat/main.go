// Command tracestat summarizes a reference trace (binary MCT1 or line
// text) in one streaming pass: record counts by kind, PE count, distinct
// addresses, the class mix — the numbers Table 1-1's columns are made
// of — plus optional per-PE breakdowns, online miss-ratio curves, and
// format conversion.
//
// Usage:
//
//	tracestat refs.mct
//	tracestat -text scenario.txt
//	tracestat -perpe -misscurve refs.mct
//	tracestat -convert refs.txt refs.mct     # binary in -> text out
//	tracestat -text -convert refs.mct s.txt  # text in -> binary out
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/coherence"
	"repro/internal/mrc"
	"repro/internal/trace"
	"repro/internal/workload"
)

// source is the streaming record reader both formats share.
type source interface {
	Read() (trace.Record, error)
}

// sink converts records to the opposite format as they stream by.
type sink interface {
	write(trace.Record) error
	flush() error
}

type textSink struct{ bw *bufio.Writer }

func (s *textSink) write(r trace.Record) error {
	line, err := trace.FormatText(r)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(s.bw, line)
	return err
}
func (s *textSink) flush() error { return s.bw.Flush() }

type binarySink struct{ w *trace.Writer }

func (s *binarySink) write(r trace.Record) error { return s.w.Write(r) }
func (s *binarySink) flush() error               { return s.w.Flush() }

func main() {
	text := flag.Bool("text", false, "parse the line format instead of binary")
	missCurve := flag.Bool("misscurve", false,
		"stream the trace through the online miss-ratio profiler and print the exact fully-associative LRU curve per PE and machine-wide")
	perPE := flag.Bool("perpe", false, "print a per-PE summary table")
	convert := flag.String("convert", "",
		"also convert the trace to PATH in the opposite format (binary in -> text out, text in -> binary out)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-text] [-perpe] [-misscurve] [-convert out] <file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var src source
	if *text {
		src = trace.NewTextScanner(f)
	} else {
		src = trace.NewReader(f)
	}

	var out sink
	var outFile *os.File
	if *convert != "" {
		outFile, err = os.Create(*convert)
		if err != nil {
			fatal(err)
		}
		if *text {
			out = &binarySink{w: trace.NewWriter(outFile)}
		} else {
			out = &textSink{bw: bufio.NewWriter(outFile)}
		}
	}

	// One pass: accumulate the summary, feed the online profilers, and
	// convert, record by record — no buffering of the whole trace.
	acc := trace.NewAccumulator()
	var global *mrc.Profiler
	profilers := map[int]*mrc.Profiler{}
	var order []int
	if *missCurve {
		global = mrc.New()
	}
	for {
		rec, err := src.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		acc.Add(rec)
		if *missCurve {
			switch rec.Op.Kind {
			case workload.OpRead, workload.OpWrite, workload.OpTestSet:
				p := profilers[rec.PE]
				if p == nil {
					p = mrc.New()
					profilers[rec.PE] = p
					order = append(order, rec.PE)
				}
				p.Touch(rec.Op.Addr)
				global.Touch(rec.Op.Addr)
			case workload.OpCompute, workload.OpHalt:
				// No memory reference: nothing for the curve.
			}
		}
		if out != nil {
			if err := out.write(rec); err != nil {
				fatal(err)
			}
		}
	}
	if out != nil {
		if err := out.flush(); err != nil {
			fatal(err)
		}
		if err := outFile.Close(); err != nil {
			fatal(err)
		}
	}

	s := acc.Stats()
	fmt.Printf("records    %d\n", s.Records)
	fmt.Printf("PEs        %d\n", s.PEs)
	fmt.Printf("addresses  %d distinct\n", s.Addresses)
	fmt.Printf("reads      %d\n", s.Reads)
	fmt.Printf("writes     %d\n", s.Writes)
	fmt.Printf("test-sets  %d\n", s.TestSets)
	fmt.Printf("computes   %d\n", s.Computes)
	fmt.Printf("halts      %d\n", s.Halts)
	memRefs := s.Reads + s.Writes + s.TestSets
	if memRefs > 0 {
		for _, c := range []coherence.Class{coherence.ClassCode, coherence.ClassLocal, coherence.ClassShared, coherence.ClassUnknown} {
			if n := s.ByClass[c]; n > 0 {
				fmt.Printf("class %-8s %d (%.1f%%)\n", c, n, 100*float64(n)/float64(memRefs))
			}
		}
	}
	if *convert != "" {
		from, to := "binary", "text"
		if *text {
			from, to = to, from
		}
		fmt.Printf("converted  %s -> %s (%s)\n", from, to, *convert)
	}

	if *perPE {
		fmt.Printf("\n%5s %9s %9s %9s %9s %9s %6s %10s\n",
			"PE", "records", "reads", "writes", "test-sets", "computes", "halts", "addresses")
		for _, ps := range acc.PerPE() {
			fmt.Printf("%5d %9d %9d %9d %9d %9d %6d %10d\n",
				ps.PE, ps.Records, ps.Reads, ps.Writes, ps.TestSets, ps.Computes, ps.Halts, ps.Addresses)
		}
	}

	if *missCurve {
		sizes := mrc.DefaultSizes()
		for _, pe := range order {
			printCurve(fmt.Sprintf("PE %d", pe), profilers[pe], sizes)
		}
		if len(order) > 1 {
			printCurve("machine (all PEs)", global, sizes)
		}
	}
}

// printCurve renders one online profiler's miss curve.
func printCurve(label string, p *mrc.Profiler, sizes []int) {
	fmt.Printf("\n%s: %d refs, footprint %d, %d cold misses\n",
		label, p.Refs(), p.Footprint(), p.Colds())
	fmt.Printf("%8s  %10s  %s\n", "lines", "misses", "miss ratio")
	for _, pt := range p.Curve(sizes) {
		fmt.Printf("%8d  %10d  %.4f\n", pt.Lines, pt.Misses, pt.MissRatio)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracestat:", err)
	os.Exit(1)
}
