// Command modelcheck exhaustively verifies a cache-coherence protocol's
// consistency — the Section 4 proof, mechanized. It explores the product
// machine of N cache automata plus memory for a single address and checks
// that every read observes the latest written value, that the latest
// value always survives, and (for RB/RWB) that the configuration lemma
// holds. On failure it prints a minimal counterexample trace.
//
// Usage:
//
//	modelcheck                     # verify rb and rwb for 2..5 caches
//	modelcheck -protocol rwb -n 4  # one protocol, one size
//	modelcheck -all                # every implemented protocol
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/coherence"
)

func main() {
	var (
		protoName = flag.String("protocol", "", "protocol to check (default: rb and rwb)")
		n         = flag.Int("n", 0, "number of caches (default: 2..5)")
		all       = flag.Bool("all", false, "check every implemented protocol")
	)
	flag.Parse()

	var protos []coherence.Protocol
	explicit := false
	switch {
	case *all:
		for _, k := range coherence.Kinds() {
			protos = append(protos, coherence.New(k))
		}
	case *protoName != "":
		explicit = true
		p, err := coherence.ByName(*protoName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		protos = []coherence.Protocol{p}
	default:
		protos = []coherence.Protocol{coherence.RB{}, coherence.NewRWB(2)}
	}

	sizes := []int{2, 3, 4, 5}
	if *n > 0 {
		sizes = []int{*n}
	}

	failed := false
	for _, p := range protos {
		// The product machine models one implicitly shared address and
		// assumes transparency: the protocol behaves identically for every
		// data class. Cm* is class-dependent — shared data never enters its
		// cache in the simulator (Cachable gates OnProc), so driving its
		// table with a shared address proves nothing about the real
		// configuration. Skip such protocols in sweeps; an explicit
		// -protocol request still runs the check and shows the trace.
		if !explicit && !transparent(p) {
			fmt.Printf("%-13s SKIP: class-dependent cachability (shared data is uncached; the transparent product machine does not apply)\n", p.Name())
			continue
		}
		for _, size := range sizes {
			opt := check.Options{Caches: size}
			switch p.Name() {
			case "rb":
				opt.Invariant = check.RBLemma
			case "rwb":
				opt.Invariant = check.RWBLemma
			}
			res, err := check.Run(p, opt)
			if err != nil {
				failed = true
				fmt.Printf("%-13s N=%d  FAIL: %v\n", p.Name(), size, err)
				continue
			}
			lemma := ""
			if opt.Invariant != nil {
				lemma = " (configuration lemma verified)"
			}
			fmt.Printf("%-13s N=%d  OK: %d reachable states, %d transitions%s\n",
				p.Name(), size, res.States, res.Transitions, lemma)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// transparent reports whether p's cachability decision ignores the data
// class — the premise of the single-address product machine.
func transparent(p coherence.Protocol) bool {
	for _, e := range []coherence.ProcEvent{coherence.EvRead, coherence.EvWrite} {
		base := p.Cachable(coherence.ClassUnknown, e)
		for _, c := range []coherence.Class{coherence.ClassCode, coherence.ClassLocal, coherence.ClassShared} {
			if p.Cachable(c, e) != base {
				return false
			}
		}
	}
	return true
}
