// Command modelcheck exhaustively verifies a cache-coherence protocol's
// consistency — the Section 4 proof, mechanized. It explores the product
// machine of N cache automata plus memory for a single address and checks
// that every read observes the latest written value, that the latest
// value always survives, and (for RB/RWB) that the configuration lemma
// holds. On failure it prints a minimal counterexample trace.
//
// Usage:
//
//	modelcheck                     # verify rb and rwb for 2..5 caches
//	modelcheck -protocol rwb -n 4  # one protocol, one size
//	modelcheck -all                # every implemented protocol
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/coherence"
)

func main() {
	var (
		protoName = flag.String("protocol", "", "protocol to check (default: rb and rwb)")
		n         = flag.Int("n", 0, "number of caches (default: 2..5)")
		all       = flag.Bool("all", false, "check every implemented protocol")
	)
	flag.Parse()

	var protos []coherence.Protocol
	switch {
	case *all:
		for _, k := range coherence.Kinds() {
			protos = append(protos, coherence.New(k))
		}
	case *protoName != "":
		p, err := coherence.ByName(*protoName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		protos = []coherence.Protocol{p}
	default:
		protos = []coherence.Protocol{coherence.RB{}, coherence.NewRWB(2)}
	}

	sizes := []int{2, 3, 4, 5}
	if *n > 0 {
		sizes = []int{*n}
	}

	failed := false
	for _, p := range protos {
		for _, size := range sizes {
			opt := check.Options{Caches: size}
			switch p.Name() {
			case "rb":
				opt.Invariant = check.RBLemma
			case "rwb":
				opt.Invariant = check.RWBLemma
			}
			res, err := check.Run(p, opt)
			if err != nil {
				failed = true
				fmt.Printf("%-13s N=%d  FAIL: %v\n", p.Name(), size, err)
				continue
			}
			lemma := ""
			if opt.Invariant != nil {
				lemma = " (configuration lemma verified)"
			}
			fmt.Printf("%-13s N=%d  OK: %d reachable states, %d transitions%s\n",
				p.Name(), size, res.States, res.Transitions, lemma)
		}
	}
	if failed {
		os.Exit(1)
	}
}
