// Command mimdrouter is the S25 shard-manager tier: an HTTP router in
// front of N mimdserved workers. It partitions the content-hash
// request-id space across the fleet with rendezvous hashing, proxies
// submissions and event streams to each shard's owner, detects worker
// failure (active probing plus passive proxy errors) and fails over,
// and runs a p99-latency-driven rebalancer that grants hot shards a
// read replica filled over the replication pull API — retiring it again
// on sustained recovery. Results are byte-identical to a single-node
// run: request ids are pure content hashes and replicas are filled with
// raw store bytes.
//
// Self-healing controls: per-worker circuit breakers open after
// consecutive proxy failures and re-admit traffic through a half-open
// trial; -attempt-timeout bounds the wait for a worker's response
// headers before failing over; -hedge races idempotent status reads
// against the successor worker once the primary exceeds its windowed
// p99; -journal makes submissions durable — a restarted router replays
// unfinished flights before taking traffic, and SIGINT drains in-flight
// streams to their terminal frame before exiting.
//
// Usage:
//
//	mimdrouter -workers w1=http://10.0.0.1:8471,w2=http://10.0.0.2:8471
//	mimdrouter -spawn 3            # self-contained: 3 in-process workers
//	mimdrouter -smoke              # CI gate: router + 2 workers, full contract
//
// The -job-timeout and -max-jobs flags must mirror the workers' values:
// both feed the content-hash request id the router routes on.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/serve"
)

// traceFlags collects repeatable -trace name=path arguments.
type traceFlags []string

func (t *traceFlags) String() string     { return strings.Join(*t, ",") }
func (t *traceFlags) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8470", "listen address")
		workers   = flag.String("workers", "", "declared fleet as id=url[,id=url...]")
		spawn     = flag.Int("spawn", 0, "instead of -workers, start this many in-process workers on loopback ports")
		shards    = flag.Int("shards", 0, "virtual shard space size; must match the workers'; 0 = default")
		jobTO     = flag.Duration("job-timeout", 0, "per-job budget the workers run with (feeds the request id; must match)")
		maxJobs   = flag.Int("max-jobs", 10000, "spec expansion limit the workers run with (must match)")
		hotP99    = flag.Float64("hot-p99-ms", 250, "windowed p99 (ms) that trips a shard's read replica")
		recover99 = flag.Float64("recover-p99-ms", 0, "p99 (ms) at or under which a replicated shard cools; 0 = hot/4")
		minSamp   = flag.Int64("min-samples", 16, "smallest window that can trip a replica")
		coolPolls = flag.Int("cool-polls", 3, "consecutive cool polls before a replica retires")
		pollIvl   = flag.Duration("poll-interval", 2*time.Second, "rebalancer poll cadence")
		probeIvl  = flag.Duration("probe-interval", time.Second, "health probe cadence")
		journalP  = flag.String("journal", "", "flight journal path; submissions are journaled and resumed after a restart")
		attemptTO = flag.Duration("attempt-timeout", 2*time.Second, "max wait for a worker's response headers before failing over; 0 disables")
		hedge     = flag.Bool("hedge", false, "hedge idempotent status reads to the successor worker past the primary's windowed p99")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight streams on SIGINT before exiting anyway")
		smoke     = flag.Bool("smoke", false, "bounded self-check: in-process router + 2 workers; verifies routing, coalescing, failover, and a replica read")
	)
	var traces traceFlags
	flag.Var(&traces, "trace", "register a trace workload as name=path (repeatable) for -spawn workers; runnable as experiment \"trace-<name>\"")
	flag.Parse()

	for _, arg := range traces {
		if err := experiments.RegisterTraceFile(arg); err != nil {
			fatal(err)
		}
	}

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "mimdrouter -smoke:", err)
			os.Exit(1)
		}
		fmt.Println("mimdrouter smoke ok: sharded routing, coalescing, submit-time failover, and replica read verified")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var fleet []cluster.Worker
	switch {
	case *spawn > 0 && *workers != "":
		fatal(fmt.Errorf("use -workers or -spawn, not both"))
	case *spawn > 0:
		var err error
		fleet, err = spawnWorkers(ctx, *spawn, *shards, *jobTO, *maxJobs)
		if err != nil {
			fatal(err)
		}
	default:
		var err error
		fleet, err = parseFleet(*workers)
		if err != nil {
			fatal(err)
		}
	}

	var journal *cluster.Journal
	if *journalP != "" {
		var err error
		journal, err = cluster.OpenJournal(*journalP)
		if err != nil {
			fatal(err)
		}
		defer journal.Close()
	}

	idOpts := serve.Options{JobTimeout: *jobTO, MaxJobs: *maxJobs}
	router, err := cluster.New(cluster.Options{
		Workers:        fleet,
		NumShards:      *shards,
		RequestID:      func(body []byte) (string, error) { return serve.ComputeRequestID(body, idOpts) },
		HotP99MS:       *hotP99,
		RecoverP99MS:   *recover99,
		MinSamples:     *minSamp,
		CoolPolls:      *coolPolls,
		PollInterval:   *pollIvl,
		ProbeInterval:  *probeIvl,
		AttemptTimeout: *attemptTO,
		Hedge:          *hedge,
		Journal:        journal,
	})
	if err != nil {
		fatal(err)
	}
	router.Start(ctx)

	if journal != nil {
		// Replay flights left pending by a previous run before taking new
		// traffic: content-hash ids make the replay idempotent.
		n, err := router.ResumePending(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mimdrouter: journal resume:", err)
		} else if n > 0 {
			fmt.Fprintf(os.Stderr, "mimdrouter: resumed %d pending flight(s) from %s\n", n, *journalP)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: router.Handler()}
	errs := make(chan error, 1)
	go func() { errs <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "mimdrouter: listening on http://%s (%d workers, %d shards)\n",
		ln.Addr(), len(fleet), router.NumShards())

	select {
	case err := <-errs:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	// Graceful drain: new submissions shed with 503 + Retry-After while
	// in-flight proxied requests — including live event streams — run to
	// their terminal frame, bounded by -drain-timeout.
	fmt.Fprintln(os.Stderr, "mimdrouter: draining")
	dctx, dcancel := context.WithTimeout(context.Background(), *drainTO)
	if err := router.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "mimdrouter: drain timed out; exiting with flights in the journal")
	}
	dcancel()
	fmt.Fprintln(os.Stderr, "mimdrouter: stopping")
	hs.Shutdown(context.Background())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mimdrouter:", err)
	os.Exit(1)
}

// parseFleet decodes the -workers flag: id=url pairs, comma separated.
func parseFleet(s string) ([]cluster.Worker, error) {
	if s == "" {
		return nil, fmt.Errorf("no fleet: pass -workers id=url[,id=url...] or -spawn N")
	}
	var fleet []cluster.Worker
	for _, part := range strings.Split(s, ",") {
		id, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -workers entry %q (want id=url)", part)
		}
		fleet = append(fleet, cluster.Worker{ID: id, URL: strings.TrimSuffix(url, "/")})
	}
	return fleet, nil
}

// spawnWorkers boots n in-process mimdserved workers on loopback ports —
// the self-contained cluster used by `make cluster` and development.
func spawnWorkers(ctx context.Context, n, shards int, jobTO time.Duration, maxJobs int) ([]cluster.Worker, error) {
	fleet := make([]cluster.Worker, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("w%d", i+1)
		srv := serve.New(serve.Options{
			Worker:     true,
			NumShards:  shards,
			WorkerID:   id,
			JobTimeout: jobTO,
			MaxJobs:    maxJobs,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		go func() {
			<-ctx.Done()
			hs.Shutdown(context.Background())
		}()
		url := "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "mimdrouter: spawned worker %s at %s\n", id, url)
		fleet = append(fleet, cluster.Worker{ID: id, URL: url})
	}
	return fleet, nil
}

// smokeWorker is one in-process worker under test.
type smokeWorker struct {
	id  string
	url string
	srv *serve.Server
	hs  *http.Server
	ln  net.Listener
}

func startSmokeWorker(id string, shards int) (*smokeWorker, error) {
	srv := serve.New(serve.Options{Worker: true, NumShards: shards, WorkerID: id})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &smokeWorker{id: id, url: "http://" + ln.Addr().String(), srv: srv, hs: hs, ln: ln}, nil
}

// runSmoke walks the cluster contract end to end with an in-process
// router over two in-process workers:
//
//  1. a submission routes to its shard's rendezvous owner and executes;
//  2. an identical resubmission is a pure cache hit with byte-identical
//     tables (content-hash ids survive the router);
//  3. the rebalancer trips a replica for the hot shard (tiny thresholds)
//     and the replica fill lands the owner's raw objects on the peer;
//  4. a replica read answers with byte-identical tables;
//  5. with every worker down, a submission is refused 503 + Retry-After.
func runSmoke() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const shards = cluster.DefaultNumShards
	w1, err := startSmokeWorker("w1", shards)
	if err != nil {
		return err
	}
	w2, err := startSmokeWorker("w2", shards)
	if err != nil {
		return err
	}

	idOpts := serve.Options{}
	router, err := cluster.New(cluster.Options{
		Workers: []cluster.Worker{
			{ID: w1.id, URL: w1.url},
			{ID: w2.id, URL: w2.url},
		},
		NumShards: shards,
		RequestID: func(body []byte) (string, error) { return serve.ComputeRequestID(body, idOpts) },
		// Hair-trigger rebalancer so one submission's latency trips the
		// replica on the first poll.
		HotP99MS:   0.000001,
		MinSamples: 1,
		HotPolls:   1,
	})
	if err != nil {
		return err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	rhs := &http.Server{Handler: router.Handler()}
	go rhs.Serve(rln)
	base := "http://" + rln.Addr().String()
	defer func() {
		rhs.Shutdown(context.Background())
		w1.hs.Shutdown(context.Background())
		w2.hs.Shutdown(context.Background())
	}()

	// 1. Cold run through the router executes on the shard owner.
	spec := `{"kind":"experiment","experiment":"fig7-1","seeds":[1,2]}`
	cold, err := postRun(base, spec)
	if err != nil {
		return err
	}
	if cold.Cache != "miss" || cold.Executed == 0 || len(cold.Tables) != 1 {
		return fmt.Errorf("cold run: want a full miss with one table, got cache=%s executed=%d tables=%d",
			cold.Cache, cold.Executed, len(cold.Tables))
	}

	// 2. Identical resubmission: pure cache hit, byte-identical table.
	warm, err := postRun(base, spec)
	if err != nil {
		return err
	}
	if warm.ID != cold.ID {
		return fmt.Errorf("request id changed across the router: %s vs %s", cold.ID, warm.ID)
	}
	if warm.Cache != "hit" || warm.Executed != 0 {
		return fmt.Errorf("warm run: want a pure cache hit, got cache=%s executed=%d", warm.Cache, warm.Executed)
	}
	if warm.Tables[0] != cold.Tables[0] {
		return fmt.Errorf("warm table differs from cold through the router")
	}

	// 3. One rebalancer poll trips a replica for the (now hot) shard and
	// fills it from the owner.
	router.RebalanceOnce(ctx)
	shard := cluster.ShardOf(cold.ID, shards)
	if rep := router.ReplicaFor(shard); rep == "" {
		return fmt.Errorf("rebalancer did not replicate hot shard %d", shard)
	}
	if router.Metrics().ReplicasAdded() == 0 {
		return fmt.Errorf("replica fill did not run")
	}

	// 4. Keep resubmitting: the alternating picks must produce at least
	// one replica read, still byte-identical and still a cache hit.
	sawReplica := false
	for i := 0; i < 4 && !sawReplica; i++ {
		again, err := postRun(base, spec)
		if err != nil {
			return err
		}
		if again.Tables[0] != cold.Tables[0] {
			return fmt.Errorf("replica-path table differs from owner's")
		}
		sawReplica = router.Metrics().ReplicaReads() > 0
	}
	if !sawReplica {
		return fmt.Errorf("no replica read after 4 resubmissions of a replicated shard")
	}

	// 5. All workers down: submissions shed with 503 + Retry-After.
	w1.hs.Shutdown(context.Background())
	w2.hs.Shutdown(context.Background())
	router.ProbeOnce(ctx)
	router.ProbeOnce(ctx) // FailThreshold consecutive failed rounds
	resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(spec))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("fleet down: want 503, got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		return fmt.Errorf("fleet-down 503 missing Retry-After")
	}
	return nil
}

// postRun submits a spec to the router's /v1/run and decodes the result.
func postRun(base, spec string) (serve.Response, error) {
	var out serve.Response
	resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(spec))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("decoding /v1/run response (status %d): %v", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("/v1/run: status %d: %s", resp.StatusCode, out.Error)
	}
	return out, nil
}
