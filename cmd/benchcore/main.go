// Command benchcore runs the S22 core performance suite — simulated
// cycles/sec and allocs/cycle for the representative machines in
// internal/perf — and writes the BENCH_core.json artifact, including
// the recorded pre-refactor baseline and the speedup against it.
//
// Usage:
//
//	benchcore                       # run the full suite, write BENCH_core.json
//	benchcore -out other.json
//	benchcore -scenario rb-64pe     # one scenario, print only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/perf"
)

// report is the BENCH_core.json schema (core-bench-v1).
type report struct {
	Schema          string                        `json:"schema"`
	GoMaxProcs      int                           `json:"gomaxprocs"`
	BaselineCommit  string                        `json:"baseline_commit"`
	Baseline        map[string]perf.BaselineEntry `json:"baseline"`
	Results         []perf.Result                 `json:"results"`
	SpeedupByName   map[string]float64            `json:"speedup_by_name"`
	SpeedupRB64     float64                       `json:"speedup_rb_64pe"`
	MaxAllocsNoOrcl float64                       `json:"max_allocs_per_cycle_oracle_off"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_core.json", "where to write the JSON artifact")
		scenario   = flag.String("scenario", "", "run a single named scenario and print its result (no artifact)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *scenario != "" {
		s, err := perf.ScenarioByName(*scenario)
		if err != nil {
			fatal(err)
		}
		r, err := perf.Run(s)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-16s %12.0f cycles/s  %7.3f allocs/cycle  %8.1f bytes/cycle  wall %.0fms\n",
			r.Name, r.CyclesPerSec, r.AllocsPerCycle, r.BytesPerCycle, r.WallMS)
		return
	}

	rep := report{
		Schema:         "core-bench-v1",
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		BaselineCommit: perf.BaselineCommit,
		Baseline:       perf.Baseline,
		SpeedupByName:  map[string]float64{},
	}
	for _, s := range perf.Scenarios() {
		r, err := perf.Run(s)
		if err != nil {
			fatal(err)
		}
		rep.Results = append(rep.Results, r)
		if b, ok := perf.Baseline[r.Name]; ok && b.CyclesPerSec > 0 {
			rep.SpeedupByName[r.Name] = r.CyclesPerSec / b.CyclesPerSec
		}
		if !r.Oracle && r.AllocsPerCycle > rep.MaxAllocsNoOrcl {
			rep.MaxAllocsNoOrcl = r.AllocsPerCycle
		}
		fmt.Fprintf(os.Stderr, "%-16s %12.0f cycles/s  %7.3f allocs/cycle  speedup %.2fx\n",
			r.Name, r.CyclesPerSec, r.AllocsPerCycle, rep.SpeedupByName[r.Name])
	}
	rep.SpeedupRB64 = rep.SpeedupByName["rb-64pe"]

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (rb-64pe speedup %.2fx over baseline %s)\n",
		*out, rep.SpeedupRB64, perf.BaselineCommit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcore:", err)
	os.Exit(1)
}
