// Command tracegen captures a workload generator's reference stream to a
// trace file (binary MCT1 or line text), for inspection with tracestat and
// replay with mimdsim -trace.
//
// Example:
//
//	tracegen -workload pde -pes 4 -ops 10000 -out refs.mct
//	tracegen -workload arrayinit -pes 1 -ops 512 -format text
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bus"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		wl     = flag.String("workload", "pde", "workload: pde, qsort, arrayinit, hotspot, random")
		pes    = flag.Int("pes", 4, "number of PEs")
		ops    = flag.Int("ops", 10000, "operations per PE")
		seed   = flag.Uint64("seed", 1, "workload seed")
		out    = flag.String("out", "", "output file (default stdout)")
		format = flag.String("format", "binary", "binary or text")
	)
	flag.Parse()

	var recs []trace.Record
	layout := workload.DefaultLayout()
	for pe := 0; pe < *pes; pe++ {
		var agent workload.Agent
		switch *wl {
		case "pde", "qsort":
			prof := workload.PDEProfile()
			if *wl == "qsort" {
				prof = workload.QuicksortProfile()
			}
			app, err := workload.NewApp(prof, layout, pe, *seed, *ops)
			if err != nil {
				fatal(err)
			}
			agent = app
		case "arrayinit":
			agent = workload.NewArrayInit(bus.Addr(pe**ops), *ops)
		case "hotspot":
			agent = workload.NewHotspot(100, *ops)
		case "random":
			agent = workload.NewRandom(0, 256, *ops, 0.3, 0.02, *seed+uint64(pe))
		default:
			fatal(fmt.Errorf("unknown workload %q (reactive workloads like spinlocks cannot be captured standalone)", *wl))
		}
		recs = append(recs, trace.Capture(pe, agent, *ops+1)...)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "text":
		if err := trace.WriteText(w, recs); err != nil {
			fatal(err)
		}
	case "binary":
		tw := trace.NewWriter(w)
		for _, r := range recs {
			if err := tw.Write(r); err != nil {
				fatal(err)
			}
		}
		if err := tw.Flush(); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d records\n", len(recs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
