// Command faultcampaign runs the S23 fault-injection resilience campaign:
// protocols × fault classes × seeds, each cell injecting seeded faults
// into a live simulation and classifying them against the divergence
// oracles as masked, detected, or silent-divergence.
//
// Usage:
//
//	faultcampaign                                   # default campaign, resilience matrix to stdout
//	faultcampaign -protocols rb,rb-dirty -classes mem-lost-write -trials 8
//	faultcampaign -seeds 1,2,3 -j 8 -cache-dir .faultcache -o report.txt
//	faultcampaign -smoke                            # CI gate: -j1 == -j4 bytes, zero silents in detectable classes
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/sweep"
)

func main() {
	var (
		protocols = flag.String("protocols", "", "comma-separated protocol names (default rb,rwb,goodman,illinois)")
		classes   = flag.String("classes", "", "comma-separated fault classes (default all); see -list-classes")
		seedList  = flag.String("seeds", "1", "comma-separated campaign seeds; each is its own reference run and trial set")
		trials    = flag.Int("trials", 4, "fault trials per (protocol, class, seed) cell")
		refs      = flag.Int("refs", 300, "memory references per PE in each trial workload")
		pes       = flag.Int("pes", 4, "processing elements per trial machine")
		workers   = flag.Int("j", runtime.NumCPU(), "worker pool size")
		cacheDir  = flag.String("cache-dir", "", "memoize cell results in this sweep store directory")
		format    = flag.String("format", "plain", "output format: plain, markdown, csv")
		outPath   = flag.String("o", "", "write the report here instead of stdout")
		events    = flag.String("events", "", "write JSONL progress events to this file (\"-\" = stderr)")
		batchRun  = flag.Bool("batch", true, "recycle one trial machine per protocol shape by generation reset; -batch=false rebuilds per trial")
		listCls   = flag.Bool("list-classes", false, "list fault classes and exit")
		smoke     = flag.Bool("smoke", false, "bounded self-check: byte-identical -j1 vs -j4 and batched vs unbatched reports, zero silent divergences in detectable classes")
	)
	flag.Parse()

	if *listCls {
		for _, c := range fault.Classes() {
			det := "detectable"
			if !c.Detectable() {
				det = "may be silent (oracle blind spot)"
			}
			fmt.Printf("%-20s %s\n", c, det)
		}
		return
	}

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "faultcampaign -smoke:", err)
			os.Exit(1)
		}
		fmt.Println("faultcampaign smoke ok: -j4 and batched reports byte-identical to -j1; zero silent divergences in detectable classes")
		return
	}

	cfg, err := buildConfig(*protocols, *classes, *seedList, *trials, *refs, *pes)
	if err != nil {
		fatal(err)
	}

	var store sweep.Store
	if *cacheDir != "" {
		ds, err := sweep.OpenDirStore(*cacheDir)
		if err != nil {
			fatal(err)
		}
		store = ds
	}
	var eventsW io.Writer
	if *events == "-" {
		eventsW = os.Stderr
	} else if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		eventsW = f
	}

	// SIGINT cancels dispatch; in-flight cells finish and are journaled,
	// so re-running with the same -cache-dir resumes where this stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := sweep.Options{Workers: *workers, Store: store, Events: eventsW, Runner: fault.NewCellRunner(cfg)}
	if *batchRun {
		// With both runners set, the engine fuses same-cell job groups and
		// hands each group a batch arena; -batch=false keeps only the
		// per-trial fresh-machine runner.
		opts.BatchRunner = fault.NewBatchCellRunner(cfg)
	}
	eng := sweep.New(opts)
	out, err := eng.Run(ctx, cfg.Specs())
	if code := sweep.ReportRunError(os.Stderr, "faultcampaign", out, err); code != 0 {
		os.Exit(code)
	}

	report, err := fault.RenderReport(cfg, out, *format)
	if err != nil {
		fatal(err)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report), 0o644); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(report)
	}

	// A silent divergence in a detectable class is an oracle hole: always
	// surface it and fail the run.
	bad, err := fault.SilentViolations(out)
	if err != nil {
		fatal(err)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "faultcampaign: %d silent divergence(s) in detectable classes:\n  %s\n",
			len(bad), strings.Join(bad, "\n  "))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcampaign:", err)
	os.Exit(1)
}

// buildConfig assembles the flags into a fault.CampaignSpec — the same
// JSON-shaped spec the S24 service layer accepts — and resolves it.
func buildConfig(protocols, classes, seedList string, trials, refs, pes int) (fault.CampaignConfig, error) {
	spec := fault.CampaignSpec{
		Protocols: splitList(protocols),
		Classes:   splitList(classes),
		Trials:    trials,
		Refs:      refs,
		PEs:       pes,
	}
	for _, part := range splitList(seedList) {
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return fault.CampaignConfig{}, fmt.Errorf("bad seed %q: %v", part, err)
		}
		spec.Seeds = append(spec.Seeds, v)
	}
	return spec.Config()
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(list string) []string {
	var out []string
	for _, part := range strings.Split(list, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// runSmoke is the CI gate: a small campaign run serially, in parallel,
// and batched must render byte-identical reports, and no detectable
// fault class may produce a silent divergence.
func runSmoke() error {
	cfg := fault.CampaignConfig{
		Protocols: []string{"rb", "rwb"},
		Seeds:     []uint64{1},
		Trials:    2,
	}
	cfg.Trial.Refs = 200
	if err := cfg.Validate(); err != nil {
		return err
	}
	run := func(workers int, batch bool) (string, *sweep.Outcome, error) {
		opts := sweep.Options{Workers: workers, Runner: fault.NewCellRunner(cfg)}
		if batch {
			opts.BatchRunner = fault.NewBatchCellRunner(cfg)
		}
		out, err := sweep.New(opts).Run(context.Background(), cfg.Specs())
		if err != nil {
			return "", nil, err
		}
		rep, err := fault.RenderReport(cfg, out, "plain")
		return rep, out, err
	}
	serial, _, err := run(1, false)
	if err != nil {
		return err
	}
	parallel, out, err := run(4, false)
	if err != nil {
		return err
	}
	if serial != parallel {
		return fmt.Errorf("-j4 report differs from -j1")
	}
	batched, _, err := run(4, true)
	if err != nil {
		return err
	}
	if batched != serial {
		return fmt.Errorf("batched report differs from unbatched")
	}
	bad, err := fault.SilentViolations(out)
	if err != nil {
		return err
	}
	if len(bad) > 0 {
		return fmt.Errorf("silent divergence(s) in detectable classes:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}
