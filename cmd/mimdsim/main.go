// Command mimdsim is the general-purpose simulator front end: it assembles
// a machine (protocol, cache geometry, bus count), attaches a workload
// (built-in generators or a trace file), runs it, and prints the metric
// summary the paper's comparisons are made of.
//
// Examples:
//
//	mimdsim -protocol rwb -pes 8 -workload spinlock-tts -iters 100
//	mimdsim -protocol rb -pes 16 -workload pde -refs 50000 -buses 2
//	mimdsim -trace refs.mct -protocol goodman
//	mimdsim -protocol rb -faults all                # quickstart fault-injection trials
//	mimdsim -protocol rb-dirty -faults mem-lost-write -fault-trials 8
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mrc"
	"repro/internal/profiling"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		protoName  = flag.String("protocol", "rb", "coherence protocol (rb, rwb, goodman, writethrough, cmstar, nocache)")
		pes        = flag.Int("pes", 4, "number of processing elements")
		lines      = flag.Int("lines", 1024, "cache lines per PE (power of two)")
		ways       = flag.Int("ways", 1, "cache associativity (1 = direct-mapped)")
		buses      = flag.Int("buses", 1, "interleaved shared buses (power of two)")
		memLat     = flag.Int("memlat", 0, "extra bus-hold cycles per memory access")
		kThresh    = flag.Uint("k", 2, "RWB write-streak threshold")
		wl         = flag.String("workload", "pde", "workload: pde, qsort, spinlock-ts, spinlock-tts, arrayinit, hotspot, random, producer-consumer")
		refs       = flag.Int("refs", 20000, "references per PE (generator workloads)")
		iters      = flag.Int("iters", 50, "acquisitions per PE (spinlock workloads)")
		seed       = flag.Uint64("seed", 1, "workload seed")
		maxCycles  = flag.Uint64("cycles", 100_000_000, "cycle budget")
		noCheck    = flag.Bool("nocheck", false, "disable the consistency oracle")
		tracePath  = flag.String("trace", "", "replay a binary trace file instead of a generator")
		verbose    = flag.Bool("v", false, "per-PE statistics")
		latency    = flag.Bool("latency", false, "print the miss-latency distribution")
		watchdog   = flag.Uint64("watchdog", 1_000_000, "abort if a PE stalls this many cycles (0 = off)")
		configPath = flag.String("config", "", "load a JSON run spec (overrides the workload/machine flags)")
		profile    = flag.Bool("profile", false, "attach the online miss-ratio profiler and print the hit-rate-vs-cache-size curve (per PE with -v)")
		profSmoke  = flag.Bool("profile-smoke", false, "run the profiler self-check (record, replay, cross-validate against offline stackdist) and exit")
		profBench  = flag.String("profile-bench", "", "measure profiler overhead and the cache-size sweep it replaces, write JSON to this file, and exit")
		faults     = flag.String("faults", "", "run fault-injection trials instead of a plain simulation: comma-separated fault classes, or \"all\"")
		faultN     = flag.Int("fault-trials", 4, "trials per fault class in -faults mode")
		faultSeed  = flag.Uint64("fault-seed", 1, "campaign seed for -faults mode (workload and fault plans)")
		utilWindow = flag.Uint64("utilwindow", 0, "sample bus utilization every N cycles and print the series")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "mimdsim:", err)
		}
	}()

	if *profSmoke {
		if err := runProfileSmoke(*seed); err != nil {
			fatal(err)
		}
		return
	}
	if *profBench != "" {
		if err := runProfileBench(*profBench, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *faults != "" {
		if err := runFaults(*protoName, *faults, *pes, *faultN, *faultSeed); err != nil {
			fatal(err)
		}
		return
	}

	var cfg machine.Config
	var agents []workload.Agent
	budget := *maxCycles

	if *configPath != "" {
		spec, err := config.LoadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		if cfg, agents, err = spec.Build(); err != nil {
			fatal(err)
		}
		budget = spec.MaxCyclesOrDefault()
	} else {
		var proto coherence.Protocol
		var err error
		if *protoName == "rwb" && *kThresh != 2 {
			proto = coherence.NewRWB(uint8(*kThresh))
		} else if proto, err = coherence.ByName(*protoName); err != nil {
			fatal(err)
		}
		if agents, err = buildAgents(*wl, *tracePath, *pes, *refs, *iters, *seed); err != nil {
			fatal(err)
		}
		cfg = machine.Config{
			Protocol:         proto,
			CacheLines:       *lines,
			CacheWays:        *ways,
			Buses:            *buses,
			MemLatency:       *memLat,
			CheckConsistency: !*noCheck,
			WatchdogCycles:   *watchdog,
		}
	}

	m, err := machine.New(cfg, agents)
	if err != nil {
		fatal(err)
	}
	var profSet *mrc.Set
	if *profile {
		profSet = mrc.Attach(m)
	}

	var ran uint64
	var series []float64
	if *utilWindow > 0 {
		series, err = machine.NewSampler(m).UtilizationSeries(*utilWindow, budget)
		ran = m.Cycle()
	} else {
		ran, err = m.Run(budget)
	}
	if err != nil {
		fatal(err)
	}
	if !m.Done() {
		fmt.Fprintf(os.Stderr, "warning: cycle budget (%d) exhausted before all PEs halted\n", budget)
	}

	mt := m.Metrics()
	fmt.Printf("protocol       %s\n", cfg.Protocol.Name())
	fmt.Printf("PEs            %d   cache %d x %d-way   buses %d\n", len(agents), cfg.CacheLines, cfg.CacheWays, cfg.Buses)
	fmt.Printf("cycles         %d\n", ran)
	fmt.Printf("refs retired   %d  (%.3f refs/cycle)\n", mt.TotalRefs(), float64(mt.TotalRefs())/float64(ran))
	fmt.Printf("bus txns       %d  (%.3f per ref)\n", mt.Bus.Transactions(), mt.BusPerRef())
	fmt.Printf("  reads        %d\n", mt.Bus.Reads())
	fmt.Printf("  writes       %d  (%d flushes)\n", mt.Bus.Writes(), mt.Bus.FlushWrites)
	fmt.Printf("  invalidates  %d\n", mt.Bus.Invalidates())
	fmt.Printf("  RMWs         %d  (%d ok, %d failed)\n", mt.Bus.RMWs(), mt.Bus.RMWSuccess, mt.Bus.RMWFailure)
	fmt.Printf("bus util       %.3f\n", mt.Bus.Utilization())
	if *buses > 1 {
		fmt.Printf("per-bus txns   %v\n", mt.PerBusTransactions)
	}
	var hits, accesses uint64
	for _, cs := range mt.Caches {
		hits += cs.ReadHits + cs.WriteHits
		accesses += cs.Reads + cs.Writes
	}
	if accesses > 0 {
		fmt.Printf("hit ratio      %.3f\n", float64(hits)/float64(accesses))
	}
	if *latency {
		h := mt.MissLatency
		fmt.Printf("miss latency   %s\n", h.String())
		fmt.Printf("  distribution %s\n", h.Sparkline())
		for _, bkt := range h.Buckets() {
			fmt.Printf("  %6d..%-6d %d\n", bkt.Low, bkt.High, bkt.Count)
		}
	}
	if *utilWindow > 0 {
		fmt.Printf("utilization series (window %d):", *utilWindow)
		for _, u := range series {
			fmt.Printf(" %.2f", u)
		}
		fmt.Println()
	}
	if *verbose {
		for i, ps := range mt.Procs {
			cs := mt.Caches[i]
			fmt.Printf("PE%-3d retired %7d  stalls %7d  miss %.3f  snarfs %d  invalidated %d\n",
				i, ps.Retired, ps.StallCycles, cs.MissRatio(), cs.Snarfs, cs.InvalidatedBy)
		}
	}
	if profSet != nil {
		printProfile(profSet, *verbose)
	}
}

func buildAgents(wl, tracePath string, pes, refs, iters int, seed uint64) ([]workload.Agent, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		recs, err := trace.NewReader(f).ReadAll()
		if err != nil {
			return nil, err
		}
		split := trace.Split(recs)
		ids := make([]int, 0, len(split))
		for pe := range split {
			ids = append(ids, pe)
		}
		sort.Ints(ids)
		if len(ids) == 0 {
			return nil, fmt.Errorf("trace %q is empty", tracePath)
		}
		agents := make([]workload.Agent, ids[len(ids)-1]+1)
		for i := range agents {
			agents[i] = workload.Idle()
		}
		for pe, a := range split {
			agents[pe] = a
		}
		return agents, nil
	}

	agents := make([]workload.Agent, pes)
	layout := workload.DefaultLayout()
	for i := range agents {
		switch wl {
		case "pde", "qsort":
			prof := workload.PDEProfile()
			if wl == "qsort" {
				prof = workload.QuicksortProfile()
			}
			app, err := workload.NewApp(prof, layout, i, seed, refs)
			if err != nil {
				return nil, err
			}
			agents[i] = app
		case "spinlock-ts", "spinlock-tts":
			strat := workload.StrategyTS
			if wl == "spinlock-tts" {
				strat = workload.StrategyTTS
			}
			s, err := workload.NewSpinlock(workload.SpinlockConfig{
				Lock: 100, Strategy: strat, Iterations: iters,
				CriticalReads: 3, CriticalWrites: 3,
				GuardedBase: 200, GuardedWords: 8,
				Seed: seed + uint64(i),
			})
			if err != nil {
				return nil, err
			}
			agents[i] = s
		case "arrayinit":
			agents[i] = workload.NewArrayInit(bus.Addr(i*refs), refs)
		case "hotspot":
			agents[i] = workload.NewHotspot(100, refs)
		case "random":
			agents[i] = workload.NewRandom(0, 256, refs, 0.3, 0.02, seed+uint64(i))
		case "producer-consumer":
			if i == 0 {
				agents[i] = workload.NewProducer(10, 11, refs, 20)
			} else {
				agents[i] = workload.NewConsumer(10, 11, refs)
			}
		default:
			return nil, fmt.Errorf("unknown workload %q", wl)
		}
	}
	return agents, nil
}

// runFaults is the fault-injection quickstart: a fault-free reference run
// of the campaign workload, then -fault-trials seeded faults per selected
// class, each classified against the divergence oracles and printed.
func runFaults(protoName, classList string, pes, trials int, seed uint64) error {
	proto, err := coherence.ByName(protoName)
	if err != nil {
		return err
	}
	var classes []fault.Class
	if classList == "all" {
		classes = fault.Classes()
	} else {
		for _, name := range strings.Split(classList, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			c, err := fault.ParseClass(name)
			if err != nil {
				return err
			}
			classes = append(classes, c)
		}
	}
	if len(classes) == 0 {
		return fmt.Errorf("no fault classes selected")
	}
	tcfg := fault.TrialConfig{Protocol: proto, PEs: pes}
	ref, err := tcfg.Reference(seed)
	if err != nil {
		return err
	}
	fmt.Printf("protocol %s: fault-free reference ran %d cycles, %d memory writes\n\n", protoName, ref.Cycles, ref.Writes)
	for _, class := range classes {
		// Fresh stream per class, same derivation as the campaign runner,
		// so trial t here reproduces trial t of the matching campaign cell.
		trialRNG := workload.NewRNG(seed ^ 0xfa17fa17fa17fa17)
		var counts [3]int
		fmt.Printf("%s:\n", class)
		for t := 0; t < trials; t++ {
			res, err := fault.RunTrial(tcfg, ref, class, seed, trialRNG.Uint64())
			if err != nil {
				return err
			}
			counts[res.Outcome]++
			fmt.Printf("  trial %d: %-8s %s\n", t, res.Outcome, res.Detail)
		}
		fmt.Printf("  => masked=%d detected=%d silent=%d\n", counts[fault.Masked], counts[fault.Detected], counts[fault.Silent])
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mimdsim:", err)
	os.Exit(1)
}
