// Profiling modes of mimdsim: -profile attaches the online
// miss-ratio-curve profiler (internal/mrc) to a plain run; -profile-smoke
// is the CI self-check (record a tier-1 scenario, replay it as a trace
// workload, byte-compare online vs offline curves, assert replay metrics
// equal the original run); -profile-bench measures what the curves cost
// against the cache-size sweep they replace.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"time"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/mrc"
	"repro/internal/stackdist"
	"repro/internal/trace"
	"repro/internal/workload"
)

// printProfile renders a run's curves: machine-wide always, per PE when
// verbose.
func printProfile(set *mrc.Set, verbose bool) {
	docs := set.Docs(mrc.DefaultSizes())
	for _, d := range docs {
		if d.Scope != "machine" && !verbose {
			continue
		}
		fmt.Printf("\nmiss-ratio curve [%s]: %d refs, footprint %d, %d cold misses\n",
			d.Scope, d.Refs, d.Footprint, d.Colds)
		fmt.Printf("%8s  %10s  %10s  %s\n", "lines", "misses", "miss ratio", "hit ratio")
		for _, pt := range d.Points {
			fmt.Printf("%8d  %10d  %10.4f  %.4f\n", pt.Lines, pt.Misses, pt.MissRatio, 1-pt.MissRatio)
		}
	}
}

// smokeConfig is the tier-1 scenario the smoke records and replays.
func smokeConfig() machine.Config {
	return machine.Config{Protocol: coherence.RB{}, CacheLines: 64}
}

const (
	smokePEs  = 4
	smokeRefs = 2000
)

func smokeAgents(seed uint64) []workload.Agent {
	layout := workload.DefaultLayout()
	prof := workload.PDEProfile()
	agents := make([]workload.Agent, smokePEs)
	for i := range agents {
		agents[i] = workload.MustApp(prof, layout, i, seed, smokeRefs)
	}
	return agents
}

func smokeRun(m *machine.Machine) error {
	if _, err := m.Run(uint64(smokeRefs) * 400); err != nil {
		return err
	}
	if !m.Done() {
		return fmt.Errorf("machine did not drain")
	}
	return nil
}

// recProbe records the raw reference streams a live run's caches see:
// per PE in program order, and interleaved in machine execution order —
// the inputs the offline stack algorithm replays.
type recProbe struct {
	rec *[]bus.Addr
	all *[]bus.Addr
}

func (p *recProbe) OnRef(a bus.Addr) {
	*p.rec = append(*p.rec, a)
	*p.all = append(*p.all, a)
}

// offlineDocs runs Mattson's stack algorithm over captured streams and
// renders docs with the exact shape mrc.Set.Docs emits, so the
// online/offline comparison can be a byte comparison.
func offlineDocs(all []bus.Addr, perPE [][]bus.Addr, sizes []int) []mrc.CurveDoc {
	doc := func(scope string, stream []bus.Addr) mrc.CurveDoc {
		p := stackdist.New()
		for _, a := range stream {
			p.Touch(a)
		}
		return mrc.CurveDoc{
			Scope: scope, Refs: p.Refs(), Colds: p.Colds(),
			Footprint: p.Footprint(), Points: p.Curve(sizes),
		}
	}
	docs := []mrc.CurveDoc{doc("machine", all)}
	for i, stream := range perPE {
		docs = append(docs, doc(fmt.Sprintf("pe%d", i), stream))
	}
	return docs
}

// runProfileSmoke is the check.sh profile-smoke stage. Everything is a
// byte comparison or a deep equality — any drift between the online
// profiler, the offline stack algorithm, and the trace replay path
// fails the stage.
func runProfileSmoke(seed uint64) error {
	cfg := smokeConfig()
	sizes := mrc.DefaultSizes()

	// Original run, profiled online.
	mA, err := machine.New(cfg, smokeAgents(seed))
	if err != nil {
		return err
	}
	setA := mrc.Attach(mA)
	if err := smokeRun(mA); err != nil {
		return err
	}
	docsA, err := json.Marshal(setA.Docs(sizes))
	if err != nil {
		return err
	}
	metricsA := mA.Metrics()

	// Record the same scenario standalone (App agents are non-reactive,
	// so the standalone capture is exactly the stream the live run
	// consumed) and replay it as a trace workload, profiled the same way.
	var recs []trace.Record
	for pe, a := range smokeAgents(seed) {
		recs = append(recs, trace.Capture(pe, a, smokeRefs+1)...)
	}
	split := trace.Split(recs)
	replay := make([]workload.Agent, smokePEs)
	for i := range replay {
		if tr, ok := split[i]; ok {
			replay[i] = tr
		} else {
			replay[i] = workload.Idle()
		}
	}
	mB, err := machine.New(cfg, replay)
	if err != nil {
		return err
	}
	setB := mrc.Attach(mB)
	if err := smokeRun(mB); err != nil {
		return err
	}
	if got, want := mB.Metrics(), metricsA; !reflect.DeepEqual(got, want) {
		return fmt.Errorf("trace replay diverged from the original run:\nreplay:   %+v\noriginal: %+v", got, want)
	}
	docsB, err := json.Marshal(setB.Docs(sizes))
	if err != nil {
		return err
	}
	if string(docsA) != string(docsB) {
		return fmt.Errorf("replay curves differ from the original run's")
	}
	fmt.Printf("profile-smoke: replay of %d records matches the original run (metrics and curves)\n", len(recs))

	// Offline cross-validation: a third identical run records the raw
	// streams (per PE and interleaved); the stack algorithm's curves over
	// them must reproduce the online docs byte for byte.
	mC, err := machine.New(cfg, smokeAgents(seed))
	if err != nil {
		return err
	}
	perPE := make([][]bus.Addr, smokePEs)
	var all []bus.Addr
	for i := 0; i < smokePEs; i++ {
		mC.Cache(i).SetProbe(&recProbe{rec: &perPE[i], all: &all})
	}
	if err := smokeRun(mC); err != nil {
		return err
	}
	offline, err := json.Marshal(offlineDocs(all, perPE, sizes))
	if err != nil {
		return err
	}
	if string(docsA) != string(offline) {
		return fmt.Errorf("online curves differ from the offline stack algorithm:\nonline:  %s\noffline: %s", docsA, offline)
	}
	fmt.Printf("profile-smoke: online curves match offline stackdist byte-for-byte (%d scopes, %d refs)\n",
		1+smokePEs, len(all))
	fmt.Println("profile-smoke: PASS")
	return nil
}

// profileBenchDoc is the BENCH_profile.json artifact (schema
// profile-bench-v1): the cost of one profiled run against the
// cache-size sweep it replaces.
type profileBenchDoc struct {
	Schema       string  `json:"schema"`
	PEs          int     `json:"pes"`
	RefsPerPE    int     `json:"refs_per_pe"`
	UnprofiledMS float64 `json:"unprofiled_ms"`
	ProfiledMS   float64 `json:"profiled_ms"`
	// OverheadPct is the profiled run's wall-time overhead over the
	// unprofiled run (the acceptance budget is <= 5%).
	OverheadPct float64 `json:"overhead_pct"`
	// Sweep is one unprofiled run per curve size: the work a single
	// profiled run replaces.
	Sweep        []profileBenchPoint `json:"sweep"`
	SweepTotalMS float64             `json:"sweep_total_ms"`
	// SweepSpeedup is sweep_total_ms / profiled_ms: how much cheaper the
	// online curve is than measuring every size directly.
	SweepSpeedup float64 `json:"sweep_speedup"`
}

type profileBenchPoint struct {
	Lines  int     `json:"lines"`
	WallMS float64 `json:"wall_ms"`
	// MissRatioMeasured is the direct-mapped cache's measured ratio;
	// MissRatioCurve is the profiler's fully-associative LRU bound at
	// the same size (equal associativity would close the gap).
	MissRatioMeasured float64 `json:"miss_ratio_measured"`
	MissRatioCurve    float64 `json:"miss_ratio_curve"`
}

func runProfileBench(out string, seed uint64) error {
	const pes = 4
	const refs = 20000
	layout := workload.DefaultLayout()
	prof := workload.PDEProfile()
	agents := func() []workload.Agent {
		as := make([]workload.Agent, pes)
		for i := range as {
			as[i] = workload.MustApp(prof, layout, i, seed, refs)
		}
		return as
	}
	run := func(lines int, profile bool) (time.Duration, machine.Metrics, *mrc.Set, error) {
		m, err := machine.New(machine.Config{Protocol: coherence.RB{}, CacheLines: lines}, agents())
		if err != nil {
			return 0, machine.Metrics{}, nil, err
		}
		var set *mrc.Set
		if profile {
			set = mrc.Attach(m)
		}
		//lint:ignore determinism benchmark wall time is the measurement itself; no simulation state depends on it
		start := time.Now()
		if _, err := m.Run(uint64(refs) * 400); err != nil {
			return 0, machine.Metrics{}, nil, err
		}
		if !m.Done() {
			return 0, machine.Metrics{}, nil, fmt.Errorf("machine did not drain at %d lines", lines)
		}
		//lint:ignore determinism benchmark wall time is the measurement itself; no simulation state depends on it
		return time.Since(start), m.Metrics(), set, nil
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

	const baseLines = 64
	// Warm up once so both timed runs see hot code paths, then take the
	// best of three for each configuration — single wall-clock samples at
	// this scale are dominated by scheduler noise.
	if _, _, _, err := run(baseLines, false); err != nil {
		return err
	}
	best := func(profile bool) (time.Duration, *mrc.Set, error) {
		var wall time.Duration
		var set *mrc.Set
		for rep := 0; rep < 3; rep++ {
			w, _, s, err := run(baseLines, profile)
			if err != nil {
				return 0, nil, err
			}
			if rep == 0 || w < wall {
				wall = w
			}
			set = s
		}
		return wall, set, nil
	}
	plainWall, _, err := best(false)
	if err != nil {
		return err
	}
	profWall, set, err := best(true)
	if err != nil {
		return err
	}
	curve := set.Global.Curve(mrc.DefaultSizes())
	curveAt := map[int]float64{}
	for _, pt := range curve {
		curveAt[pt.Lines] = pt.MissRatio
	}

	doc := profileBenchDoc{
		Schema:       "profile-bench-v1",
		PEs:          pes,
		RefsPerPE:    refs,
		UnprofiledMS: ms(plainWall),
		ProfiledMS:   ms(profWall),
		OverheadPct:  100 * (ms(profWall) - ms(plainWall)) / ms(plainWall),
	}
	for _, sz := range mrc.DefaultSizes() {
		wall, mt, _, err := run(sz, false)
		if err != nil {
			return err
		}
		var refs, hits uint64
		for _, cs := range mt.Caches {
			refs += cs.Reads + cs.Writes
			hits += cs.ReadHits + cs.WriteHits
		}
		measured := 0.0
		if refs > 0 {
			measured = 1 - float64(hits)/float64(refs)
		}
		doc.Sweep = append(doc.Sweep, profileBenchPoint{
			Lines: sz, WallMS: ms(wall),
			MissRatioMeasured: measured,
			MissRatioCurve:    curveAt[sz],
		})
		doc.SweepTotalMS += ms(wall)
	}
	if doc.ProfiledMS > 0 {
		doc.SweepSpeedup = doc.SweepTotalMS / doc.ProfiledMS
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("profile bench: unprofiled %.1fms, profiled %.1fms (%.1f%% overhead), %d-size sweep %.1fms (%.1fx the profiled run)\n",
		doc.UnprofiledMS, doc.ProfiledMS, doc.OverheadPct, len(doc.Sweep), doc.SweepTotalMS, doc.SweepSpeedup)
	return nil
}
