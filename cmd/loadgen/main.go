// Command loadgen is the closed-loop load generator for mimdserved. It
// drives a mixed spec set (quick experiments, a multi-experiment sweep,
// and a small fault campaign) at a target concurrency, first against a
// cold store and then again warm, and emits BENCH_serve.json with
// latency percentiles, throughput, the warm/cold speedup, and the
// server's own coalescing and cache counters.
//
// Usage:
//
//	loadgen                             # embedded server, c=32, n=256
//	loadgen -c 64 -n 1024 -rps 200
//	loadgen -url http://127.0.0.1:8471  # drive an external daemon
//
// The generator is deterministic: the spec mix cycles by request index
// (no randomness), so two runs against the same store issue the same
// byte-identical request sequence. Only 200, 429, and 503-with-
// Retry-After responses are acceptable; sheds are retried under the
// shared retry policy honoring their Retry-After hint, and anything
// else fails the run. After the phases, a handful of async jobs are
// streamed and every event stream must close with a terminal frame —
// a clean EOF without one is a transport truncation, not a result.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/retry"
	"repro/internal/serve"
	"repro/internal/sweep"
)

func main() {
	var (
		url        = flag.String("url", "", "drive this server instead of an embedded one")
		conc       = flag.Int("c", 32, "closed-loop concurrency (in-flight requests)")
		total      = flag.Int("n", 128, "requests per phase")
		rps        = flag.Int("rps", 0, "target request rate; 0 = as fast as the loop closes")
		outPath    = flag.String("o", "BENCH_serve.json", "where to write the JSON artifact")
		minSpeedup = flag.Float64("min-speedup", 0, "fail unless warm is at least this much faster than cold; 0 disables")
		cacheDir   = flag.String("cache-dir", "", "embedded server store directory (default: a fresh temp dir, i.e. a cold start)")
		skew       = flag.Float64("skew", 0, "Zipf exponent for skewed traffic; 0 = the legacy uniform cycle")
		seed       = flag.Uint64("seed", 1, "seed for the skewed traffic plan (same seed = same request sequence)")
		shiftAt    = flag.Float64("shift-at", 0.5, "fraction of the phase at which the skewed plan's hot key shifts")
		clusterPts = flag.String("cluster", "", "scaling-curve mode: embedded router + this many workers per point, comma separated (e.g. 1,2,4); writes the cluster-bench artifact")
	)
	flag.Parse()

	if *clusterPts != "" {
		counts, err := parseCounts(*clusterPts)
		if err == nil {
			out := *outPath
			if out == "BENCH_serve.json" {
				out = "BENCH_cluster.json"
			}
			err = runClusterCurve(counts, *conc, *total, *rps, *skew, *seed, *shiftAt, out)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*url, *conc, *total, *rps, *outPath, *minSpeedup, *cacheDir, *skew, *seed, *shiftAt); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// specMix is the deterministic request mix: six quick experiments with
// index-cycled seeds, one multi-experiment sweep, and one small fault
// campaign. Every spec is distinct, and each repeats n/len(mix) times
// per phase, so the server's engine-run count must come in far under
// the request count — that gap is the coalescing + caching evidence.
func specMix() []string {
	quick := []string{"fig3-1", "fig5-1", "fig6-1", "fig6-2", "fig6-3", "fig7-1"}
	var mix []string
	for i, id := range quick {
		mix = append(mix, fmt.Sprintf(`{"kind":"experiment","experiment":%q,"seeds":[%d]}`, id, i%3+1))
	}
	mix = append(mix,
		`{"kind":"sweep","experiments":["fig6-1","fig6-2"],"seeds":[1,2]}`,
		`{"kind":"experiment","experiment":"fig7-1","seeds":[1,2,3]}`,
		`{"kind":"fault","fault":{"protocols":["rb","rwb","goodman"],"classes":["bus-drop","mem-bit-flip"],"trials":2,"refs":250}}`)
	return mix
}

// wallNow reads the wall clock for latency accounting only; no
// simulation result ever depends on it.
func wallNow() time.Time {
	//lint:ignore observability-only wall time; results never depend on it
	return time.Now()
}

// phaseStats is one phase's client-side measurements.
type phaseStats struct {
	WallMS        float64 `json:"wall_ms"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Retries429    int64   `json:"retries_429"`
}

// serverCounters is the subset of /metrics the artifact records.
type serverCounters struct {
	EngineRuns    int64   `json:"engine_runs"`
	Coalesced     int64   `json:"coalesced"`
	StoreServed   int64   `json:"store_served"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	SilentFails   int64   `json:"silent_failures"`
}

// benchReport is the BENCH_serve.json schema.
type benchReport struct {
	Schema         string         `json:"schema"`
	GoMaxProcs     int            `json:"gomaxprocs"`
	Concurrency    int            `json:"concurrency"`
	RequestsPhase  int            `json:"requests_per_phase"`
	DistinctSpecs  int            `json:"distinct_specs"`
	Cold           phaseStats     `json:"cold"`
	Warm           phaseStats     `json:"warm"`
	Speedup        float64        `json:"warm_speedup"`
	StreamsChecked int            `json:"streams_checked"`
	Server         serverCounters `json:"server"`
}

func run(url string, conc, total, rps int, outPath string, minSpeedup float64, cacheDir string, skew float64, seed uint64, shiftAt float64) error {
	base := url
	if base == "" {
		// Embedded mode: boot a daemon on a loopback port over a cold
		// store so the cold/warm contrast is real.
		if cacheDir == "" {
			dir, err := os.MkdirTemp("", "loadgen-store-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			cacheDir = dir
		}
		store, err := sweep.OpenDirStore(cacheDir)
		if err != nil {
			return err
		}
		srv := serve.New(serve.Options{
			Store:       store,
			MaxInFlight: runtime.NumCPU(),
			QueueDepth:  conc * 2,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "loadgen: embedded server on %s (store %s)\n", base, cacheDir)
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        conc,
		MaxIdleConnsPerHost: conc,
	}}
	mix := specMix()
	plan := sequence(len(mix), total, skew, seed, shiftAt)

	cold, err := runPhase("cold", client, base, mix, plan, conc, rps)
	if err != nil {
		return err
	}
	warm, err := runPhase("warm", client, base, mix, plan, conc, rps)
	if err != nil {
		return err
	}

	// Streamed results get the same scrutiny as synchronous ones: every
	// event stream must close with a terminal frame.
	streams, err := verifyStreams(client, base, mix, len(mix))
	if err != nil {
		return fmt.Errorf("stream verification: %v", err)
	}

	counters, err := scrapeMetrics(client, base)
	if err != nil {
		return err
	}
	// The coalescing + caching evidence: 2·n requests hit the server but
	// only the distinct cold specs ever reached the engine.
	if counters.EngineRuns >= int64(2*total) {
		return fmt.Errorf("no coalescing: %d engine runs for %d requests", counters.EngineRuns, 2*total)
	}

	rep := benchReport{
		Schema:         "serve-bench-v1",
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Concurrency:    conc,
		RequestsPhase:  total,
		DistinctSpecs:  len(mix),
		Cold:           cold,
		Warm:           warm,
		StreamsChecked: streams,
		Server:         counters,
	}
	if warm.WallMS > 0 {
		rep.Speedup = cold.WallMS / warm.WallMS
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"loadgen: wrote %s — cold %.0fms (p95 %.1fms), warm %.0fms (p95 %.1fms), speedup %.1fx, engine runs %d for %d requests, hit ratio %.2f\n",
		outPath, cold.WallMS, cold.P95MS, warm.WallMS, warm.P95MS, rep.Speedup,
		counters.EngineRuns, 2*total, counters.CacheHitRatio)
	if minSpeedup > 0 && rep.Speedup < minSpeedup {
		return fmt.Errorf("warm speedup %.2fx is under the %.2fx floor", rep.Speedup, minSpeedup)
	}
	return nil
}

// runPhase issues the plan's requests (plan[i] indexes into mix) at the
// given concurrency and aggregates client-side latency.
func runPhase(name string, client *http.Client, base string, mix []string, plan []int, conc, rps int) (phaseStats, error) {
	n := len(plan)
	var (
		stats    phaseStats
		mu       sync.Mutex
		lats     = make([]time.Duration, 0, n)
		retries  atomic.Int64
		firstErr atomic.Value
	)

	// Optional open-loop pacing on top of the closed loop: a token per
	// tick, workers block on the channel.
	var tokens chan struct{}
	if rps > 0 {
		tokens = make(chan struct{}, rps)
		//lint:ignore determinism open-loop pacing is wall-clock by definition; no simulation state depends on it
		tick := time.NewTicker(time.Second / time.Duration(rps))
		defer tick.Stop()
		done := make(chan struct{})
		defer close(done)
		go func() {
			for {
				select {
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default:
					}
				case <-done:
					return
				}
			}
		}()
	}

	work := make(chan int)
	var wg sync.WaitGroup
	start := wallNow()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if tokens != nil {
					<-tokens
				}
				lat, r429, err := issue(client, base, mix[plan[i]])
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				retries.Add(r429)
				mu.Lock()
				lats = append(lats, lat)
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := wallNow().Sub(start)

	if err, _ := firstErr.Load().(error); err != nil {
		return stats, fmt.Errorf("%s phase: %v", name, err)
	}
	if len(lats) != n {
		return stats, fmt.Errorf("%s phase: %d of %d requests completed", name, len(lats), n)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(q float64) float64 {
		i := int(q * float64(len(lats)))
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return ms(lats[i])
	}
	stats.WallMS = ms(wall)
	stats.P50MS = pct(0.50)
	stats.P95MS = pct(0.95)
	stats.P99MS = pct(0.99)
	stats.Retries429 = retries.Load()
	if wall > 0 {
		stats.ThroughputRPS = float64(n) / wall.Seconds()
	}
	return stats, nil
}

// issue sends one request under the shared retry policy. A 429 — or a
// router's transient 503 shed — is retried honoring its Retry-After
// hint (retry.AfterError); any other non-200 fails permanently: the
// contract is "answer or shed", never drop. The jitter stream is keyed
// by the spec bytes, so the schedule is reproducible per spec.
func issue(client *http.Client, base, spec string) (lat time.Duration, retries429 int64, err error) {
	start := wallNow()
	h := fnv.New64a()
	h.Write([]byte(spec))
	pol := retry.Policy{
		Base:        250 * time.Millisecond,
		Cap:         5 * time.Second,
		MaxAttempts: 50,
		Seed:        h.Sum64(),
	}
	err = retry.Do(context.Background(), pol, func(context.Context) error {
		resp, err := client.Post(base+"/v1/run", "application/json", strings.NewReader(spec))
		if err != nil {
			return retry.Permanent(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			retries429++
			secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			if secs < 1 {
				secs = 1
			}
			return &retry.AfterError{
				After: time.Duration(secs) * time.Second,
				Err:   fmt.Errorf("still shed (%d) after retries: %s", resp.StatusCode, spec),
			}
		default:
			return retry.Permanent(fmt.Errorf("status %d for %s: %s",
				resp.StatusCode, spec, strings.TrimSpace(string(body))))
		}
	})
	if err != nil {
		return 0, retries429, err
	}
	return wallNow().Sub(start), retries429, nil
}

// verifyStreams submits n async jobs and consumes their event streams,
// requiring a terminal frame on every one. A stream that ends with a
// clean EOF and no terminal frame used to parse as "short but clean" —
// it is a transport truncation, and counting it as success is exactly
// the silent failure the terminal-frame check exists to catch.
func verifyStreams(client *http.Client, base string, mix []string, n int) (int, error) {
	for i := 0; i < n; i++ {
		if err := verifyOneStream(client, base, mix[i%len(mix)]); err != nil {
			return i, err
		}
	}
	return n, nil
}

func verifyOneStream(client *http.Client, base, spec string) error {
	resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return err
	}
	var status serve.JobStatus
	derr := json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submitting stream job: status %d", resp.StatusCode)
	}
	if derr != nil {
		return fmt.Errorf("decoding job status: %v", derr)
	}
	req, err := http.NewRequest(http.MethodGet, base+status.EventsURL, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	es, err := client.Do(req)
	if err != nil {
		return err
	}
	defer es.Body.Close()
	if es.StatusCode != http.StatusOK {
		return fmt.Errorf("event stream for %s: status %d", spec, es.StatusCode)
	}
	scan := cluster.NewTerminalScanner(es.Header.Get("Content-Type"))
	buf := make([]byte, 32*1024)
	for {
		n, rerr := es.Body.Read(buf)
		if n > 0 {
			scan.Observe(buf[:n])
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return fmt.Errorf("event stream for %s: %v", spec, rerr)
		}
	}
	if !scan.Terminated() {
		return fmt.Errorf("event stream for %s truncated: clean EOF with no terminal frame", spec)
	}
	return nil
}

// scrapeMetrics pulls the coalescing and cache counters out of the
// server's Prometheus exposition.
func scrapeMetrics(client *http.Client, base string) (serverCounters, error) {
	var c serverCounters
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return c, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return c, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.HasPrefix(line, "#") {
			continue
		}
		switch fields[0] {
		case "mimdserved_engine_runs_total":
			c.EngineRuns, _ = strconv.ParseInt(fields[1], 10, 64)
		case "mimdserved_coalesced_total":
			c.Coalesced, _ = strconv.ParseInt(fields[1], 10, 64)
		case "mimdserved_store_served_total":
			c.StoreServed, _ = strconv.ParseInt(fields[1], 10, 64)
		case "mimdserved_cache_hit_ratio":
			c.CacheHitRatio, _ = strconv.ParseFloat(fields[1], 64)
		case "mimdserved_silent_failures_total":
			c.SilentFails, _ = strconv.ParseInt(fields[1], 10, 64)
		}
	}
	return c, nil
}
