package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// --- deterministic skewed traffic (satellite of S25) ---

// splitmix64 is the generator behind the skewed plan: a tiny, fully
// deterministic PRNG (no math/rand — the plan must be reproducible from
// the seed alone, and the determinism analyzer holds this repo to that).
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps the next 53 random bits onto [0, 1).
func (s *splitmix64) unit() float64 {
	return float64(s.next()>>11) / float64(uint64(1)<<53)
}

// zipfCDF builds the cumulative distribution of Zipf weights
// w_k = 1/(k+1)^s over n ranks.
func zipfCDF(n int, s float64) []float64 {
	weights := make([]float64, n)
	total := 0.0
	for k := range weights {
		weights[k] = 1.0 / math.Pow(float64(k+1), s)
		total += weights[k]
	}
	cdf := make([]float64, n)
	acc := 0.0
	for k := range cdf {
		acc += weights[k] / total
		cdf[k] = acc
	}
	return cdf
}

// sequence precomputes the deterministic spec-index plan for one phase.
// skew ≤ 0 is the legacy uniform cycle. With skew > 0 the plan draws
// ranks from a Zipf CDF (seeded splitmix64) and maps rank→spec through a
// rotation that changes at shiftAt·n — the mid-run hot-key phase shift:
// the head of the popularity ranking moves to a different spec (and so,
// under the router, a different shard), which is exactly the traffic
// pattern the p99 rebalancer exists for. Same seed, same plan, always.
func sequence(mixLen, n int, skew float64, seed uint64, shiftAt float64) []int {
	out := make([]int, n)
	if skew <= 0 {
		for i := range out {
			out[i] = i % mixLen
		}
		return out
	}
	cdf := zipfCDF(mixLen, skew)
	rng := &splitmix64{state: seed}
	shiftPoint := int(shiftAt * float64(n))
	hotOffset := mixLen/2 + 1
	for i := range out {
		rank := sort.SearchFloat64s(cdf, rng.unit())
		if rank >= mixLen {
			rank = mixLen - 1
		}
		if i >= shiftPoint {
			rank = (rank + hotOffset) % mixLen
		}
		out[i] = rank
	}
	return out
}

// --- embedded cluster (tentpole: the S25 scaling curve) ---

// embeddedCluster is a self-contained router + N workers on loopback
// ports, each worker over its own cold DirStore.
type embeddedCluster struct {
	base    string
	router  *cluster.Router
	servers []*http.Server
	dirs    []string
	stop    func()
}

func (c *embeddedCluster) shutdown() {
	if c.stop != nil {
		c.stop()
	}
	for _, hs := range c.servers {
		hs.Shutdown(context.Background())
	}
	for _, dir := range c.dirs {
		os.RemoveAll(dir)
	}
}

// startCluster boots nWorkers workers and a router over them. The
// rebalancer polls fast (200ms) so replica activation is observable
// within a bench phase.
func startCluster(nWorkers, conc int) (*embeddedCluster, error) {
	ec := &embeddedCluster{}
	var fleet []cluster.Worker
	for i := 0; i < nWorkers; i++ {
		id := fmt.Sprintf("w%d", i+1)
		dir, err := os.MkdirTemp("", "loadgen-cluster-*")
		if err != nil {
			ec.shutdownPartial()
			return nil, err
		}
		ec.dirs = append(ec.dirs, dir)
		store, err := sweep.OpenDirStore(dir)
		if err != nil {
			ec.shutdownPartial()
			return nil, err
		}
		srv := serve.New(serve.Options{
			Store:       store,
			Worker:      true,
			WorkerID:    id,
			MaxInFlight: runtime.NumCPU(),
			QueueDepth:  conc * 2,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ec.shutdownPartial()
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		ec.servers = append(ec.servers, hs)
		fleet = append(fleet, cluster.Worker{ID: id, URL: "http://" + ln.Addr().String()})
	}

	idOpts := serve.Options{}
	router, err := cluster.New(cluster.Options{
		Workers:      fleet,
		RequestID:    func(body []byte) (string, error) { return serve.ComputeRequestID(body, idOpts) },
		PollInterval: 200 * time.Millisecond,
	})
	if err != nil {
		ec.shutdownPartial()
		return nil, err
	}
	ec.router = router
	ctx, cancel := context.WithCancel(context.Background())
	ec.stop = cancel
	router.Start(ctx)

	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ec.shutdownPartial()
		return nil, err
	}
	rhs := &http.Server{Handler: router.Handler()}
	go rhs.Serve(rln)
	ec.servers = append(ec.servers, rhs)
	ec.base = "http://" + rln.Addr().String()
	return ec, nil
}

// shutdownPartial tears down whatever a failed startCluster had built.
func (c *embeddedCluster) shutdownPartial() { c.shutdown() }

// routerCounters is the subset of the router's /metrics the artifact
// records per curve point.
type routerCounters struct {
	ReplicaReads     int64 `json:"replica_reads"`
	Failovers        int64 `json:"failovers"`
	ReplicasAdded    int64 `json:"replicas_added"`
	ReplicasActive   int   `json:"replicas_active"`
	FillObjects      int64 `json:"fill_objects"`
	RebalancePolls   int64 `json:"rebalance_polls"`
	TruncatedStreams int64 `json:"truncated_streams"`
}

// clusterPoint is one worker-count measurement on the scaling curve.
type clusterPoint struct {
	Workers int            `json:"workers"`
	Cold    phaseStats     `json:"cold"`
	Warm    phaseStats     `json:"warm"`
	Router  routerCounters `json:"router"`
}

// clusterReport is the BENCH_cluster.json schema.
type clusterReport struct {
	Schema        string         `json:"schema"`
	GoMaxProcs    int            `json:"gomaxprocs"`
	Concurrency   int            `json:"concurrency"`
	RequestsPhase int            `json:"requests_per_phase"`
	DistinctSpecs int            `json:"distinct_specs"`
	Skew          float64        `json:"skew"`
	Seed          uint64         `json:"seed"`
	Points        []clusterPoint `json:"points"`
}

// runClusterCurve measures cold+warm phases against embedded clusters of
// each requested worker count and writes the scaling curve artifact.
func runClusterCurve(counts []int, conc, total, rps int, skew float64, seed uint64, shiftAt float64, outPath string) error {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        conc,
		MaxIdleConnsPerHost: conc,
	}}
	mix := specMix()
	plan := sequence(len(mix), total, skew, seed, shiftAt)

	rep := clusterReport{
		Schema:        "cluster-bench-v1",
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Concurrency:   conc,
		RequestsPhase: total,
		DistinctSpecs: len(mix),
		Skew:          skew,
		Seed:          seed,
	}
	for _, n := range counts {
		ec, err := startCluster(n, conc)
		if err != nil {
			return err
		}
		cold, err := runPhase(fmt.Sprintf("cold/%dw", n), client, ec.base, mix, plan, conc, rps)
		if err != nil {
			ec.shutdown()
			return err
		}
		warm, err := runPhase(fmt.Sprintf("warm/%dw", n), client, ec.base, mix, plan, conc, rps)
		if err != nil {
			ec.shutdown()
			return err
		}
		// Event streams through the router must close with a terminal
		// frame, and a fault-free run must never trip the truncation
		// detector.
		if _, err := verifyStreams(client, ec.base, mix, len(mix)); err != nil {
			ec.shutdown()
			return fmt.Errorf("%d worker(s): stream verification: %v", n, err)
		}
		rc, err := scrapeRouter(client, ec.base)
		if err != nil {
			ec.shutdown()
			return err
		}
		if rc.TruncatedStreams > 0 {
			ec.shutdown()
			return fmt.Errorf("%d worker(s): %d truncated stream(s) in a fault-free run", n, rc.TruncatedStreams)
		}
		rc.ReplicasActive = ec.router.ActiveReplicas()
		rep.Points = append(rep.Points, clusterPoint{Workers: n, Cold: cold, Warm: warm, Router: rc})
		fmt.Fprintf(os.Stderr,
			"loadgen: %d worker(s) — cold %.0fms (%.1f rps), warm %.0fms (%.1f rps), replica reads %d, replicas added %d\n",
			n, cold.WallMS, cold.ThroughputRPS, warm.WallMS, warm.ThroughputRPS, rc.ReplicaReads, rc.ReplicasAdded)
		ec.shutdown()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote %s (%d curve points)\n", outPath, len(rep.Points))
	return nil
}

// scrapeRouter pulls the rebalancer and failover counters from the
// router's Prometheus exposition.
func scrapeRouter(client *http.Client, base string) (routerCounters, error) {
	var c routerCounters
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return c, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return c, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.HasPrefix(line, "#") {
			continue
		}
		switch fields[0] {
		case "mimdrouter_replica_reads_total":
			c.ReplicaReads, _ = strconv.ParseInt(fields[1], 10, 64)
		case "mimdrouter_failovers_total":
			c.Failovers, _ = strconv.ParseInt(fields[1], 10, 64)
		case "mimdrouter_replicas_added_total":
			c.ReplicasAdded, _ = strconv.ParseInt(fields[1], 10, 64)
		case "mimdrouter_fill_objects_total":
			c.FillObjects, _ = strconv.ParseInt(fields[1], 10, 64)
		case "mimdrouter_rebalance_polls_total":
			c.RebalancePolls, _ = strconv.ParseInt(fields[1], 10, 64)
		case "mimdrouter_truncated_streams_total":
			c.TruncatedStreams, _ = strconv.ParseInt(fields[1], 10, 64)
		}
	}
	return c, nil
}

// parseCounts decodes the -cluster flag: worker counts, comma separated.
func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -cluster entry %q (want positive worker counts like 1,2,4)", part)
		}
		out = append(out, n)
	}
	return out, nil
}
