package main

import "testing"

// TestSequenceDeterministic: the skewed plan is a pure function of
// (mixLen, n, skew, seed, shiftAt) — two runs with the same seed issue
// the same request sequence.
func TestSequenceDeterministic(t *testing.T) {
	a := sequence(9, 512, 1.2, 42, 0.5)
	b := sequence(9, 512, 1.2, 42, 0.5)
	if len(a) != 512 {
		t.Fatalf("plan length %d, want 512", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := sequence(9, 512, 1.2, 43, 0.5)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical plans")
	}
}

// TestSequenceSkewAndShift: before the shift point one spec dominates;
// after it, a different one does — the mid-run hot-key phase shift.
func TestSequenceSkewAndShift(t *testing.T) {
	const mixLen, n = 9, 4000
	plan := sequence(mixLen, n, 1.5, 7, 0.5)
	counts := func(lo, hi int) map[int]int {
		out := map[int]int{}
		for _, idx := range plan[lo:hi] {
			out[idx]++
		}
		return out
	}
	hottest := func(c map[int]int) (best, bestN int) {
		for idx, n := range c {
			if n > bestN {
				best, bestN = idx, n
			}
		}
		return
	}
	firstHot, firstN := hottest(counts(0, n/2))
	secondHot, secondN := hottest(counts(n/2, n))
	if firstHot == secondHot {
		t.Fatalf("hot key did not shift: %d dominates both halves", firstHot)
	}
	// Zipf s=1.5 over 9 ranks gives the head ~45% of traffic; well over
	// the uniform 1/9.
	if firstN < n/2/5 || secondN < n/2/5 {
		t.Fatalf("no skew: hot keys got %d and %d of %d requests", firstN, secondN, n/2)
	}
}

// TestSequenceUniformFallback: skew 0 is the legacy deterministic cycle.
func TestSequenceUniformFallback(t *testing.T) {
	plan := sequence(4, 10, 0, 1, 0.5)
	for i, idx := range plan {
		if idx != i%4 {
			t.Fatalf("plan[%d] = %d, want %d", i, idx, i%4)
		}
	}
}
