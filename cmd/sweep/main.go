// Command sweep drives the S21 experiment-orchestration engine from the
// command line: expand (experiment × seed) grids into content-hashed
// jobs, run them on a worker pool, memoize results in a versioned
// on-disk store, and merge the output deterministically.
//
// Usage:
//
//	sweep -list                               # job axes of every experiment
//	sweep -experiments table1-1,fig7-1 -seeds 1,2,3
//	sweep -experiments all -j 8 -cache-dir .sweepcache
//	sweep -events - ...                       # JSONL progress to stderr
//	sweep -batch=false ...                    # fresh machine per job (no fusion)
//	sweep -smoke                              # CI gate: parallel==serial, warm==all-cached
//	sweep -batch-smoke                        # CI gate: batched==unbatched, byte for byte
//	sweep -bench -bench-out BENCH_sweep.json  # perf artifact: serial vs parallel vs batched vs warm
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/sweep"
)

// traceFlags collects repeatable -trace name=path arguments.
type traceFlags []string

func (t *traceFlags) String() string     { return strings.Join(*t, ",") }
func (t *traceFlags) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids with their declared axes and exit")
		expList  = flag.String("experiments", "all", "comma-separated experiment ids, or \"all\"")
		seedList = flag.String("seeds", "1", "comma-separated replica seeds; replicas aggregate into mean ±stddev cells")
		scale    = flag.Int("scale", 1, "workload scale multiplier")
		workers  = flag.Int("j", runtime.NumCPU(), "worker pool size")
		jobTO    = flag.Duration("job-timeout", 0, "per-job wall-clock budget (e.g. 90s); an overrunning job fails and the sweep continues; 0 disables")
		cacheDir = flag.String("cache-dir", "", "memoize results in this sweep store directory")
		format   = flag.String("format", "plain", "output format: plain, markdown, csv")
		events   = flag.String("events", "", "write JSONL progress events to this file (\"-\" = stderr)")
		summary  = flag.Bool("summary", true, "print the per-experiment summary to stderr")
		batchRun = flag.Bool("batch", true, "fuse same-shape jobs and recycle machines by generation reset; -batch=false rebuilds a fresh machine per job")
		smoke    = flag.Bool("smoke", false, "bounded self-check: assert parallel==serial bytes and a warm re-run executes zero jobs")
		bsmoke   = flag.Bool("batch-smoke", false, "bounded self-check: assert batched output (reports, journal, store envelopes) is byte-identical to unbatched")
		bench    = flag.Bool("bench", false, "benchmark the sweep-shaped experiments serial vs parallel vs warm")
		benchOut = flag.String("bench-out", "BENCH_sweep.json", "where -bench writes its JSON artifact")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	var traces traceFlags
	flag.Var(&traces, "trace", "register a trace workload as name=path (repeatable); runnable as experiment \"trace-<name>\"")
	flag.Parse()

	for _, arg := range traces {
		if err := experiments.RegisterTraceFile(arg); err != nil {
			fatal(err)
		}
	}

	stopProfiles, err := profiling.Start(*cpuprof, *memprof)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
		}
	}()

	if *list {
		for _, e := range experiments.All() {
			axes := "-"
			var parts []string
			if e.Axes.Seed {
				parts = append(parts, "seed")
			}
			if e.Axes.Scale {
				parts = append(parts, "scale")
			}
			if len(parts) > 0 {
				axes = strings.Join(parts, ",")
			}
			fmt.Printf("%-22s v%-2d axes=%-10s %s\n", e.ID, e.Version, axes, e.Title)
		}
		return
	}

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "sweep -smoke:", err)
			os.Exit(1)
		}
		fmt.Println("sweep smoke ok: parallel output byte-identical to serial; warm re-run executed 0 jobs")
		return
	}

	if *bsmoke {
		if err := runBatchSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "sweep -batch-smoke:", err)
			os.Exit(1)
		}
		fmt.Println("sweep batch smoke ok: fused reports, journal, and store envelopes byte-identical to unbatched")
		return
	}

	if *bench {
		if err := runBench(*benchOut, *workers, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "sweep -bench:", err)
			os.Exit(1)
		}
		return
	}

	seeds, err := parseSeeds(*seedList)
	if err != nil {
		fatal(err)
	}
	specs, err := resolveSpecs(*expList, seeds, *scale)
	if err != nil {
		fatal(err)
	}

	var store sweep.Store
	if *cacheDir != "" {
		ds, err := sweep.OpenDirStore(*cacheDir)
		if err != nil {
			fatal(err)
		}
		store = ds
	}
	var eventsW io.Writer
	if *events == "-" {
		eventsW = os.Stderr
	} else if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		eventsW = f
	}

	// SIGINT cancels the context: dispatch stops, in-flight jobs finish
	// and land in the journal, and the run exits cleanly — a second ^C
	// kills the process the usual way (stop() restores default handling
	// once the run returns).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := sweep.Options{Workers: *workers, Store: store, Events: eventsW, JobTimeout: *jobTO}
	if !*batchRun {
		// Naming a Runner alone opts the engine out of job fusion: the
		// escape hatch if a batched result ever looks suspect.
		opts.Runner = sweep.ExperimentRunner
	}
	eng := sweep.New(opts)
	out, err := eng.Run(ctx, specs)
	if code := sweep.ReportRunError(os.Stderr, "sweep", out, err); code != 0 {
		os.Exit(code)
	}
	for i, tb := range out.Tables {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(tb.Render(*format))
	}
	if *summary {
		fmt.Fprintf(os.Stderr, "\n%-22s %5s %9s %7s %12s\n", "experiment", "jobs", "executed", "cached", "wall")
		for _, st := range out.Stats {
			fmt.Fprintf(os.Stderr, "%-22s %5d %9d %7d %12s\n",
				st.Experiment, st.Jobs, st.Executed, st.CacheHits, st.Wall.Round(time.Millisecond))
		}
		fmt.Fprintf(os.Stderr, "%-22s %5d %9d %7d %12s\n",
			"total", len(out.Jobs), out.Executed, out.CacheHits, out.Wall.Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

// parseSeeds parses a comma-separated seed list.
func parseSeeds(list string) ([]uint64, error) {
	var seeds []uint64
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds given")
	}
	return seeds, nil
}

// resolveSpecs maps the -experiments flag to sweep specs.
func resolveSpecs(list string, seeds []uint64, scale int) ([]sweep.Spec, error) {
	if list == "all" || list == "" {
		return sweep.AllSpecs(seeds, scale), nil
	}
	var specs []sweep.Spec
	for _, id := range strings.Split(list, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		sp, err := sweep.SpecFor(id, seeds, scale)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no experiments selected")
	}
	return specs, nil
}

// smokeIDs is the bounded experiment set the CI gate runs: the
// parameter-free artifacts plus one real multi-seed simulation, all
// cheap at scale 1.
var smokeIDs = []string{"fig3-1", "fig5-1", "fig6-1", "fig6-2", "fig6-3", "section7-sbb", "fig7-1"}

// runSmoke executes the smoke sweep three ways — serial, parallel, and
// warm — and fails unless the parallel merged output and journal are
// byte-identical to the serial ones and the warm run executes nothing.
func runSmoke() error {
	seeds := []uint64{1, 2}
	var specs []sweep.Spec
	for _, id := range smokeIDs {
		sp, err := sweep.SpecFor(id, seeds, 1)
		if err != nil {
			return err
		}
		specs = append(specs, sp)
	}

	render := func(out *sweep.Outcome) []byte {
		var b bytes.Buffer
		for _, tb := range out.Tables {
			b.WriteString(tb.Plain())
			b.WriteByte('\n')
		}
		return b.Bytes()
	}

	serialStore := sweep.NewMemStore()
	serial, err := sweep.New(sweep.Options{Workers: 1, Store: serialStore}).Run(context.Background(), specs)
	if err != nil {
		return err
	}
	parallelStore := sweep.NewMemStore()
	parallel, err := sweep.New(sweep.Options{Workers: 4, Store: parallelStore}).Run(context.Background(), specs)
	if err != nil {
		return err
	}
	if !bytes.Equal(render(serial), render(parallel)) {
		return fmt.Errorf("parallel merged output differs from serial")
	}
	if !bytes.Equal(serialStore.JournalBytes(), parallelStore.JournalBytes()) {
		return fmt.Errorf("parallel journal differs from serial")
	}
	warm, err := sweep.New(sweep.Options{Workers: 4, Store: parallelStore}).Run(context.Background(), specs)
	if err != nil {
		return err
	}
	if warm.Executed != 0 {
		return fmt.Errorf("warm re-run executed %d jobs, want 0", warm.Executed)
	}
	if !bytes.Equal(render(parallel), render(warm)) {
		return fmt.Errorf("warm merged output differs from cold")
	}
	return nil
}

// runBatchSmoke executes a 2-shape × 3-seed sweep twice — unbatched
// (fresh machine per job) and batched (fused same-shape groups recycling
// machines by generation reset) — and fails unless the merged reports,
// the journal, and every on-disk store envelope are byte-identical.
func runBatchSmoke() error {
	seeds := []uint64{1, 2, 3}
	var specs []sweep.Spec
	for _, id := range []string{"ablation-threshold", "ablation-private"} {
		sp, err := sweep.SpecFor(id, seeds, 1)
		if err != nil {
			return err
		}
		specs = append(specs, sp)
	}

	render := func(out *sweep.Outcome) []byte {
		var b bytes.Buffer
		for _, tb := range out.Tables {
			b.WriteString(tb.Plain())
			b.WriteByte('\n')
		}
		return b.Bytes()
	}

	unbatchedStore := sweep.NewMemStore()
	unbatched, err := sweep.New(sweep.Options{Workers: 2, Store: unbatchedStore, Runner: sweep.ExperimentRunner}).
		Run(context.Background(), specs)
	if err != nil {
		return err
	}
	batchedStore := sweep.NewMemStore()
	batched, err := sweep.New(sweep.Options{Workers: 2, Store: batchedStore}).
		Run(context.Background(), specs)
	if err != nil {
		return err
	}
	if !bytes.Equal(render(batched), render(unbatched)) {
		return fmt.Errorf("batched merged output differs from unbatched")
	}
	if !bytes.Equal(batchedStore.JournalBytes(), unbatchedStore.JournalBytes()) {
		return fmt.Errorf("batched journal differs from unbatched")
	}
	for _, j := range sweep.Expand(specs) {
		want, ok, err := unbatchedStore.GetRaw(j.Key)
		if err != nil || !ok {
			return fmt.Errorf("unbatched store missing %s: %v", j.Key, err)
		}
		got, ok, err := batchedStore.GetRaw(j.Key)
		if err != nil || !ok {
			return fmt.Errorf("batched store missing %s: %v", j.Key, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("store envelope for %s (%s seed %d) differs between batched and unbatched",
				j.Key, j.Spec.Experiment, j.Spec.Seed)
		}
	}
	return nil
}

// benchIDs are the sweep-shaped experiments the perf artifact tracks.
var benchIDs = []string{"section7-saturation", "ablation-mix", "ablation-threshold", "extension-hier"}

// benchEntry is one experiment's measurements in BENCH_sweep.json.
// jobs_per_sec is the unbatched parallel rate (comparable to
// sweep-bench-v1 artifacts); batched_jobs_per_sec is the same sweep with
// same-shape jobs fused onto generation-reset machines, and
// batch_speedup is their ratio.
type benchEntry struct {
	ID                string  `json:"id"`
	Jobs              int     `json:"jobs"`
	SerialWallMS      float64 `json:"serial_wall_ms"`
	ParallelWallMS    float64 `json:"parallel_wall_ms"`
	Speedup           float64 `json:"speedup"`
	JobsPerSec        float64 `json:"jobs_per_sec"`
	BatchedWallMS     float64 `json:"batched_wall_ms"`
	BatchedJobsPerSec float64 `json:"batched_jobs_per_sec"`
	BatchSpeedup      float64 `json:"batch_speedup"`
	WarmWallMS        float64 `json:"warm_wall_ms"`
	WarmCacheHitRate  float64 `json:"warm_cache_hit_rate"`
}

// benchReport is the BENCH_sweep.json schema.
type benchReport struct {
	Schema          string       `json:"schema"`
	GoMaxProcs      int          `json:"gomaxprocs"`
	Workers         int          `json:"workers"`
	Scale           int          `json:"scale"`
	Seeds           []uint64     `json:"seeds"`
	Experiments     []benchEntry `json:"experiments"`
	TotalSerialMS   float64      `json:"total_serial_ms"`
	TotalParallelMS float64      `json:"total_parallel_ms"`
	OverallSpeedup  float64      `json:"overall_speedup"`
}

// runBench measures each sweep-shaped experiment four ways — cold serial
// (unbatched), cold parallel (unbatched), cold parallel batched, warm
// parallel — and writes the machine-readable perf artifact.
func runBench(outPath string, workers, scale int) error {
	seeds := []uint64{1, 2, 3}
	rep := benchReport{
		Schema:     "sweep-bench-v2",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Scale:      scale,
		Seeds:      seeds,
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, id := range benchIDs {
		sp, err := sweep.SpecFor(id, seeds, scale)
		if err != nil {
			return err
		}
		specs := []sweep.Spec{sp}
		serial, err := sweep.New(sweep.Options{Workers: 1, Runner: sweep.ExperimentRunner}).Run(context.Background(), specs)
		if err != nil {
			return err
		}
		warmStore := sweep.NewMemStore()
		parallel, err := sweep.New(sweep.Options{Workers: workers, Store: warmStore, Runner: sweep.ExperimentRunner}).
			Run(context.Background(), specs)
		if err != nil {
			return err
		}
		batched, err := sweep.New(sweep.Options{Workers: workers}).Run(context.Background(), specs)
		if err != nil {
			return err
		}
		warm, err := sweep.New(sweep.Options{Workers: workers, Store: warmStore}).Run(context.Background(), specs)
		if err != nil {
			return err
		}
		entry := benchEntry{
			ID:             id,
			Jobs:           len(parallel.Jobs),
			SerialWallMS:   ms(serial.Wall),
			ParallelWallMS: ms(parallel.Wall),
			BatchedWallMS:  ms(batched.Wall),
			WarmWallMS:     ms(warm.Wall),
		}
		if parallel.Wall > 0 {
			entry.Speedup = float64(serial.Wall) / float64(parallel.Wall)
			entry.JobsPerSec = float64(entry.Jobs) / parallel.Wall.Seconds()
		}
		if batched.Wall > 0 {
			entry.BatchedJobsPerSec = float64(entry.Jobs) / batched.Wall.Seconds()
			entry.BatchSpeedup = float64(parallel.Wall) / float64(batched.Wall)
		}
		if len(warm.Jobs) > 0 {
			entry.WarmCacheHitRate = float64(warm.CacheHits) / float64(len(warm.Jobs))
		}
		rep.Experiments = append(rep.Experiments, entry)
		rep.TotalSerialMS += entry.SerialWallMS
		rep.TotalParallelMS += entry.ParallelWallMS
		fmt.Fprintf(os.Stderr, "%-22s jobs=%d serial=%.0fms parallel=%.0fms speedup=%.2fx batched=%.0fms batchx=%.2fx warm=%.0fms hit=%.0f%%\n",
			id, entry.Jobs, entry.SerialWallMS, entry.ParallelWallMS, entry.Speedup,
			entry.BatchedWallMS, entry.BatchSpeedup, entry.WarmWallMS, 100*entry.WarmCacheHitRate)
	}
	if rep.TotalParallelMS > 0 {
		rep.OverallSpeedup = rep.TotalSerialMS / rep.TotalParallelMS
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (overall speedup %.2fx over serial on %d workers)\n",
		outPath, rep.OverallSpeedup, workers)
	return nil
}
