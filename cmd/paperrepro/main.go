// Command paperrepro regenerates every table and figure of Rudolph &
// Segall (1984) from the simulator.
//
// Usage:
//
//	paperrepro                    # print every artifact (quick scale)
//	paperrepro -only fig6-2       # one artifact
//	paperrepro -list              # list artifact ids
//	paperrepro -format markdown   # Markdown output (also: csv, plain)
//	paperrepro -scale 10 -seed 7  # bigger workloads, different seed
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/coherence"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		only   = flag.String("only", "", "run a single experiment by id")
		format = flag.String("format", "plain", "output format: plain, markdown, csv")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		scale  = flag.Int("scale", 1, "workload scale multiplier (1 = quick, 10 = full)")
		seed   = flag.Uint64("seed", 1, "deterministic workload seed")
		charts = flag.Bool("charts", false, "append ASCII bar charts to the sweep experiments")
		dot    = flag.String("dot", "", "emit a protocol's state diagram as Graphviz DOT (rb or rwb) and exit")
	)
	flag.Parse()

	if *dot != "" {
		p, err := coherence.ByName(*dot)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(experiments.TransitionDOT(p))
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	params := experiments.Params{Seed: *seed, Scale: *scale}
	run := experiments.All()
	if *only != "" {
		e, err := experiments.ByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run = []experiments.Experiment{e}
	}

	for i, e := range run {
		tb, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(tb.Render(*format))
		if *charts {
			if spec, ok := chartSpecs[e.ID]; ok {
				fmt.Println()
				fmt.Print(report.ChartFromTable(tb, spec.labels, spec.value, 48))
			}
		}
	}
}

// chartSpecs maps sweep experiments to the (label columns, value column)
// worth charting.
var chartSpecs = map[string]struct {
	labels []int
	value  int
}{
	"section7-saturation": {labels: []int{0, 1}, value: 3}, // utilization
	"ablation-mix":        {labels: []int{1, 0}, value: 2}, // bus txns/ref
	"ablation-lock":       {labels: []int{0, 1}, value: 4}, // txns/acquisition
	"ablation-barrier":    {labels: []int{0}, value: 3},    // txns/round
	"extension-hier":      {labels: []int{1}, value: 3},    // global txns
	"table1-1":            {labels: []int{0, 1}, value: 2}, // read miss %
}
