// Command paperrepro regenerates every table and figure of Rudolph &
// Segall (1984) from the simulator, scheduled through the S21 sweep
// engine: artifacts run in parallel on a worker pool, results are
// memoized when a cache directory is given, and the merged output is
// byte-identical whatever the worker count.
//
// Usage:
//
//	paperrepro                    # print every artifact (quick scale)
//	paperrepro -only fig6-2       # one artifact
//	paperrepro -list              # list artifact ids
//	paperrepro -format markdown   # Markdown output (also: csv, plain)
//	paperrepro -scale 10 -seed 7  # bigger workloads, different seed
//	paperrepro -seeds 1,2,3       # seed replicas, aggregated mean±sd
//	paperrepro -j 8 -cache-dir .sweepcache   # parallel + memoized
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/coherence"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sweep"
)

func main() {
	var (
		only     = flag.String("only", "", "run a single experiment by id")
		format   = flag.String("format", "plain", "output format: plain, markdown, csv")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		scale    = flag.Int("scale", 1, "workload scale multiplier (1 = quick, 10 = full)")
		seed     = flag.Uint64("seed", 1, "deterministic workload seed")
		seedList = flag.String("seeds", "", "comma-separated replica seeds (overrides -seed; replicas aggregate into mean ±stddev cells)")
		jobs     = flag.Int("j", runtime.NumCPU(), "sweep worker pool size")
		cacheDir = flag.String("cache-dir", "", "memoize artifact results in this sweep store (warm re-runs execute zero simulations)")
		quiet    = flag.Bool("quiet", false, "suppress the per-artifact timing summary on stderr")
		charts   = flag.Bool("charts", false, "append ASCII bar charts to the sweep experiments")
		dot      = flag.String("dot", "", "emit a protocol's state diagram as Graphviz DOT (rb or rwb) and exit")
	)
	flag.Parse()

	if *dot != "" {
		p, err := coherence.ByName(*dot)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(experiments.TransitionDOT(p))
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	seeds, err := parseSeeds(*seedList, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	run := experiments.All()
	if *only != "" {
		e, err := experiments.ByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run = []experiments.Experiment{e}
	}
	specs := make([]sweep.Spec, 0, len(run))
	for _, e := range run {
		specs = append(specs, sweep.Spec{
			Experiment: e.ID, Version: e.Version, Axes: e.Axes,
			Seeds: seeds, Scale: *scale,
		})
	}

	var store sweep.Store
	if *cacheDir != "" {
		ds, err := sweep.OpenDirStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		store = ds
	}

	// SIGINT cancels dispatch; finished artifacts are journaled, so a
	// re-run with the same -cache-dir resumes instead of starting over.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	eng := sweep.New(sweep.Options{Workers: *jobs, Store: store})
	out, err := eng.Run(ctx, specs)
	// Failures (an artifact panicked or timed out) exit non-zero with the
	// same rendering every sweep-backed CLI uses — never print a partial
	// artifact set as if it were the paper.
	if code := sweep.ReportRunError(os.Stderr, "paperrepro", out, err); code != 0 {
		os.Exit(code)
	}

	for i, tb := range out.Tables {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(tb.Render(*format))
		if *charts {
			if spec := run[i].Chart; spec != nil {
				fmt.Println()
				fmt.Print(report.ChartFromTable(tb, spec.Labels, spec.Value, 48))
			}
		}
	}

	if !*quiet {
		printSummary(os.Stderr, out)
	}
}

// parseSeeds resolves the -seeds / -seed flags into the replica list.
func parseSeeds(list string, single uint64) ([]uint64, error) {
	if list == "" {
		return []uint64{single}, nil
	}
	var seeds []uint64
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds entry %q: %v", part, err)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("-seeds given but empty")
	}
	return seeds, nil
}

// printSummary writes the per-artifact timing table to w.
func printSummary(w *os.File, out *sweep.Outcome) {
	fmt.Fprintf(w, "\n%-22s %5s %9s %7s %12s\n", "artifact", "jobs", "executed", "cached", "wall")
	for _, st := range out.Stats {
		fmt.Fprintf(w, "%-22s %5d %9d %7d %12s\n",
			st.Experiment, st.Jobs, st.Executed, st.CacheHits, st.Wall.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "%-22s %5d %9d %7d %12s\n",
		"total", len(out.Jobs), out.Executed, out.CacheHits, out.Wall.Round(time.Millisecond))
}
