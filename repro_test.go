package repro

import (
	"strings"
	"testing"
)

// The facade tests exercise the public API exactly as the examples do.

func TestFacadeProtocols(t *testing.T) {
	names := map[string]Protocol{
		"rb": RB(), "rwb": RWB(2), "goodman": Goodman(),
		"writethrough": WriteThrough(), "cmstar": CmStar(), "nocache": NoCache(),
		"illinois": Illinois(),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("%s constructor returned %q", want, p.Name())
		}
		byName, err := ProtocolByName(want)
		if err != nil || byName.Name() != want {
			t.Errorf("ProtocolByName(%q): %v", want, err)
		}
	}
	if len(ProtocolNames()) != 8 {
		t.Errorf("ProtocolNames() = %v", ProtocolNames())
	}
	if _, err := ProtocolByName("mesi"); err == nil {
		t.Error("unknown protocol resolved")
	}
}

func TestFacadeMachineRoundTrip(t *testing.T) {
	agents := []Agent{
		NewArrayInit(0, 32),
		NewHotspot(100, 20),
		NewRandom(200, 16, 100, 0.4, 0.1, 7),
	}
	m, err := NewMachine(MachineConfig{Protocol: RWB(2), CacheLines: 64, CheckConsistency: true}, agents)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("machine did not drain")
	}
	mt := m.Metrics()
	if mt.TotalRefs() == 0 || mt.Bus.Transactions() == 0 {
		t.Fatalf("metrics empty: %+v", mt)
	}
	if err := m.VerifyFinalMemory(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSpinlock(t *testing.T) {
	s1 := NewSpinlock(SpinlockConfig{Lock: 50, Strategy: StrategyTTS, Iterations: 5})
	s2 := NewSpinlock(SpinlockConfig{Lock: 50, Strategy: StrategyTS, Iterations: 5})
	m, err := NewMachine(MachineConfig{Protocol: RB(), CheckConsistency: true}, []Agent{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if s1.Acquisitions()+s2.Acquisitions() != 10 {
		t.Fatalf("acquisitions = %d + %d", s1.Acquisitions(), s2.Acquisitions())
	}
}

func TestFacadeApps(t *testing.T) {
	layout := DefaultLayout()
	for _, prof := range []AppProfile{PDEProfile(), QuicksortProfile()} {
		app, err := NewApp(prof, layout, 0, 1, 50)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMachine(MachineConfig{Protocol: CmStar(), CheckConsistency: true}, []Agent{app})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(100_000); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) < 10 {
		t.Fatalf("only %d experiments registered", len(Experiments()))
	}
	tb, err := RunExperiment("fig6-2", ExperimentParams{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.Plain(), "No Bus Traffic") {
		t.Fatal("fig6-2 lost its headline row")
	}
	if _, err := RunExperiment("unknown", ExperimentParams{}); err == nil {
		t.Fatal("unknown experiment resolved")
	}
}

func TestFacadeCheckProtocol(t *testing.T) {
	for _, p := range []Protocol{RB(), RWB(2), Goodman()} {
		res, err := CheckProtocol(p, 3)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.States == 0 {
			t.Fatalf("%s: no states explored", p.Name())
		}
	}
}

func TestFacadeTrace(t *testing.T) {
	a := TraceOf(Op{}, Op{})
	if a == nil {
		t.Fatal("TraceOf returned nil")
	}
}

func TestFacadeHierMachine(t *testing.T) {
	agents := [][]Agent{
		{NewRandom(0, 16, 50, 0.3, 0, 1)},
		{NewRandom(0, 16, 50, 0.3, 0, 2)},
	}
	m, err := NewHierMachine(HierConfig{Clusters: 2, PEsPerCluster: 1, CheckConsistency: true}, agents)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("hier machine did not drain")
	}
	if m.Metrics().FilterRatio() < 0 {
		t.Fatal("metrics broken")
	}
}
