# Makefile — thin entry points over the go tool; `make check` is the CI
# gate (see scripts/check.sh for the individual stages).

GO ?= go

.PHONY: check build test race lint fuzz modelcheck fault bench bench-core serve loadgen bench-serve cluster bench-cluster chaos profile bench-profile fmt

check:
	sh scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs every repo-local analyzer (exhaustive, determinism,
# tableaudit, phaseaudit, allocaudit, syncaudit). Exit 0 = clean,
# 1 = findings, 2 = the tool itself failed to load/type-check a package.
lint:
	$(GO) run ./cmd/protolint ./...

# fuzz runs the protocol-step fuzzer for a bounded minute; CI runs only
# the checked-in seeds (via `make test`).
fuzz:
	$(GO) test ./internal/coherence -run FuzzProtocolStep -fuzz FuzzProtocolStep -fuzztime 60s

modelcheck:
	$(GO) run ./cmd/modelcheck -all -n 3

# fault runs the default S23 fault-injection campaign and prints the
# per-protocol resilience matrix; `faultcampaign -smoke` is the CI gate.
fault:
	$(GO) run ./cmd/faultcampaign

# bench measures the sweep engine (serial vs parallel vs warm cache) and
# writes BENCH_sweep.json.
bench:
	sh scripts/bench.sh sweep

# bench-core measures the simulator's cycle loop (cycles/sec and
# allocs/cycle across the internal/perf suite) and writes BENCH_core.json
# with the speedup over the recorded pre-refactor baseline.
bench-core:
	sh scripts/bench.sh core

# serve runs the S24 simulation-as-a-service daemon on its default
# loopback port with an on-disk result store.
serve:
	$(GO) run ./cmd/mimdserved -cache-dir .servecache

# loadgen drives an embedded daemon with the mixed spec set, cold then
# warm, and writes BENCH_serve.json; `bench-serve` additionally enforces
# the 5x warm-speedup floor (the CI perf artifact).
loadgen:
	$(GO) run ./cmd/loadgen

bench-serve:
	sh scripts/bench.sh serve

# cluster runs the S25 tier self-contained: a router on its default port
# with three in-process workers. Point loadgen (or curl) at it.
cluster:
	$(GO) run ./cmd/mimdrouter -spawn 3

# bench-cluster measures the 1x/2x/4x-worker scaling curve under skewed
# traffic and writes BENCH_cluster.json (schema cluster-bench-v1).
bench-cluster:
	sh scripts/bench.sh cluster

# chaos runs the S27 chaos campaign over every fault class at every
# intensity and prints the masked/degraded/failed matrix;
# `chaoscampaign -smoke` is the CI gate.
chaos:
	$(GO) run ./cmd/chaoscampaign -intensities low,default,high

# profile runs the online miss-ratio-curve profiler self-check: record a
# tier-1 scenario, replay it as a trace workload, and cross-validate the
# online curves byte-for-byte against the offline stack algorithm.
profile:
	$(GO) run ./cmd/mimdsim -profile-smoke

# bench-profile measures the profiler's overhead and the cache-size
# sweep one profiled run replaces, writing BENCH_profile.json (schema
# profile-bench-v1).
bench-profile:
	sh scripts/bench.sh profile

fmt:
	gofmt -w .
