// Faultrecovery: the Section 8 research remark made concrete — "the
// exploitation of replicated values in the various caches to improve the
// reliability of the memory". After a shared workload quiesces, every word
// of the shared segment is corrupted in main memory and then repaired from
// cache replicas where possible. RWB, which updates copies instead of
// invalidating them, keeps more replicas alive than RB.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const pes, words = 4, 256

	fmt.Printf("%d PEs hammer %d shared words (50%% writes), then every word is corrupted\n\n", pes, words)
	fmt.Printf("%-10s %12s %12s %10s\n", "protocol", "corrupted", "recovered", "fraction")
	for _, proto := range []repro.Protocol{repro.RB(), repro.RWB(2), repro.Goodman()} {
		var agents []repro.Agent
		for i := 0; i < pes; i++ {
			agents = append(agents, repro.NewRandom(0, words, 3000, 0.5, 0, uint64(i+1)))
		}
		m, err := repro.NewMachine(repro.MachineConfig{
			Protocol:         proto,
			CacheLines:       64,
			CheckConsistency: true,
		}, agents)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := m.Run(50_000_000); err != nil {
			log.Fatal(err)
		}

		corrupted, recovered := 0, 0
		for a := repro.Addr(0); a < words; a++ {
			pristine := m.Memory().Peek(a)
			m.Memory().Corrupt(a, 0xdeadbeef)
			corrupted++
			// Scavenge: a dirty copy is the unique latest value; a clean
			// copy is identical to the uncorrupted word.
			if v, ok := scavenge(m, a); ok {
				m.Memory().Poke(a, v)
				recovered++
			} else {
				m.Memory().Poke(a, pristine) // unrecoverable; restore for bookkeeping
			}
		}
		fmt.Printf("%-10s %12d %12d %10.2f\n", proto.Name(), corrupted, recovered, float64(recovered)/float64(corrupted))
	}
	fmt.Println("\nRWB's write broadcasting leaves more live replicas than RB's invalidation,")
	fmt.Println("so more memory words are repairable — the paper's reliability observation.")
}

func scavenge(m *repro.Machine, a repro.Addr) (repro.Word, bool) {
	for pe := 0; pe < m.Processors(); pe++ {
		for _, e := range m.Cache(pe).Entries() {
			// Invalid copies are stale by definition; everything else is
			// either identical to the uncorrupted word (clean) or the
			// unique latest value (dirty).
			if e.Addr == a && e.State != repro.StateInvalid {
				return e.Data, true
			}
		}
	}
	return 0, false
}
