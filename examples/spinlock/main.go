// Spinlock: the Section 6 hot-spot experiment as a runnable program.
// Eight processors contend for one lock; the same contention is run with
// plain Test-and-Set (every attempt a bus read-modify-write) and with
// Test-and-Test-and-Set (spin in the cache), under both the RB and RWB
// schemes. The per-acquisition bus cost is the paper's argument in one
// number.
package main

import (
	"fmt"
	"log"

	"repro"
)

func run(proto repro.Protocol, strategy repro.Strategy) (txnsPerAcq float64, cycles uint64) {
	const pes, iters = 8, 50
	var agents []repro.Agent
	var locks []*repro.Spinlock
	for i := 0; i < pes; i++ {
		s := repro.NewSpinlock(repro.SpinlockConfig{
			Lock:     100,
			Strategy: strategy,
			// Hold the lock long enough to create real contention.
			Iterations:    iters,
			CriticalReads: 4, CriticalWrites: 4,
			GuardedBase: 200, GuardedWords: 8,
			Seed: uint64(i),
		})
		locks = append(locks, s)
		agents = append(agents, s)
	}
	m, err := repro.NewMachine(repro.MachineConfig{
		Protocol:         proto,
		CacheLines:       256,
		CheckConsistency: true,
	}, agents)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(50_000_000); err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, s := range locks {
		total += s.Acquisitions()
	}
	if total != pes*iters {
		log.Fatalf("expected %d acquisitions, got %d", pes*iters, total)
	}
	mt := m.Metrics()
	return float64(mt.Bus.Transactions()) / float64(total), mt.Cycles
}

func main() {
	fmt.Println("8 PEs, 1 lock, 50 acquisitions each (critical section: 8 shared accesses)")
	fmt.Println()
	fmt.Printf("%-10s %-6s %18s %12s\n", "protocol", "spin", "bus txns/acquire", "cycles")
	for _, proto := range []repro.Protocol{repro.RB(), repro.RWB(2), repro.Goodman()} {
		for _, strat := range []repro.Strategy{repro.StrategyTS, repro.StrategyTTS} {
			txns, cycles := run(proto, strat)
			fmt.Printf("%-10s %-6s %18.1f %12d\n", proto.Name(), strat, txns, cycles)
		}
	}
	fmt.Println()
	fmt.Println("TS burns the bus while the lock is held; TTS spins in the caches.")
	fmt.Println("That is the paper's Figures 6-1 vs 6-2; run `paperrepro -only fig6-2`")
	fmt.Println("to see the state matrices themselves.")
}
