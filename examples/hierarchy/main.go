// Hierarchy: the paper's Section 8 future-work direction made runnable.
// Clusters of processors sit behind inclusive cluster caches on a shared
// global bus; the cluster level filters most local traffic away, so the
// machine scales past what one bus could carry. Locks still work
// machine-wide: the adapters delegate Test-and-Set cycles to the global
// bus.
//
// This example uses the internal hier package directly (it is an
// extension beyond the paper's core API).
package main

import (
	"fmt"
	"log"

	"repro/internal/hier"
	"repro/internal/workload"
)

func main() {
	fmt.Println("two-level machine: clusters of 4 PEs, shared-read-heavy workload")
	fmt.Println()
	fmt.Printf("%-9s %-5s %-12s %-12s %-13s %-11s %8s\n",
		"clusters", "PEs", "local txns", "global txns", "filter ratio", "global util", "cycles")

	for _, clusters := range []int{1, 2, 4, 8} {
		const pes = 4
		agents := make([][]workload.Agent, clusters)
		for c := range agents {
			agents[c] = make([]workload.Agent, pes)
			for p := range agents[c] {
				agents[c][p] = workload.NewRandom(0, 256, 2000, 0.08, 0.01, uint64(c*10+p+1))
			}
		}
		m, err := hier.New(hier.Config{
			Clusters: clusters, PEsPerCluster: pes,
			L1Lines: 16, ClusterLines: 512,
			CheckConsistency: true,
		}, agents)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := m.Run(100_000_000); err != nil {
			log.Fatal(err)
		}
		if !m.Done() {
			log.Fatal("machine did not drain")
		}
		mt := m.Metrics()
		fmt.Printf("%-9d %-5d %-12d %-12d %-13.2f %-11.3f %8d\n",
			clusters, clusters*pes, mt.LocalTransactions(), mt.Global.Transactions(),
			mt.FilterRatio(), mt.Global.Utilization(), mt.Cycles)
	}

	fmt.Println()
	fmt.Println("The cluster caches absorb most local misses, so the global bus carries a")
	fmt.Println("fraction of the machine's references — the property that lets the paper's")
	fmt.Println("schemes grow toward 'large scale parallel processing' (Section 8).")
}
