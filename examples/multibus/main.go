// Multibus: the Figure 7-1 configuration. The same 16-processor workload
// runs on one, two and four shared buses interleaved on the low address
// bits. The traffic splits evenly across banks, so each bus carries ~1/n
// of the load — the paper's recipe for growing past a single bus's
// bandwidth ("relatively large parallel processors having as many as 32 to
// 256 processors could be economically built").
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const pes = 16
	const refs = 8000

	fmt.Printf("%d PEs, %d shared references each, RB scheme\n\n", pes, refs)
	fmt.Printf("%-6s %-28s %-10s %8s\n", "buses", "txns per bus", "max util", "cycles")
	for _, buses := range []int{1, 2, 4} {
		var agents []repro.Agent
		for i := 0; i < pes; i++ {
			agents = append(agents, repro.NewRandom(0, 1024, refs, 0.3, 0.02, uint64(i+1)))
		}
		m, err := repro.NewMachine(repro.MachineConfig{
			Protocol:         repro.RB(),
			CacheLines:       128,
			Buses:            buses,
			CheckConsistency: true,
		}, agents)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := m.Run(100_000_000); err != nil {
			log.Fatal(err)
		}
		mt := m.Metrics()
		maxUtil := 0.0
		for i := 0; i < buses; i++ {
			if u := m.Buses().Bus(i).Stats().Utilization(); u > maxUtil {
				maxUtil = u
			}
		}
		fmt.Printf("%-6d %-28s %-10.3f %8d\n", buses, fmt.Sprint(mt.PerBusTransactions), maxUtil, mt.Cycles)
	}
	fmt.Println("\nDoubling the buses roughly halves each bus's traffic (Figure 7-1) and,")
	fmt.Println("once the single bus is saturated, cuts the finish time accordingly.")
}
