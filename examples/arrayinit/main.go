// Arrayinit: the Section 5 motivating scenario. A processor initializes an
// array four times larger than its cache. Under RB every element costs two
// bus writes (the write-through on the first store, then the write-back
// when the Local line is evicted); under RWB the store leaves the line in
// the clean FirstWrite state, so eviction is silent and each element costs
// exactly one bus write.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const cacheLines = 256
	const elements = cacheLines * 4

	fmt.Printf("initializing %d words through a %d-line cache\n\n", elements, cacheLines)
	fmt.Printf("%-14s %12s %14s\n", "protocol", "bus writes", "per element")
	for _, proto := range []repro.Protocol{repro.RB(), repro.RWB(2), repro.Goodman(), repro.WriteThrough()} {
		m, err := repro.NewMachine(repro.MachineConfig{
			Protocol:         proto,
			CacheLines:       cacheLines,
			CheckConsistency: true,
		}, []repro.Agent{repro.NewArrayInit(0, elements)})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := m.Run(10_000_000); err != nil {
			log.Fatal(err)
		}
		// Count the write-backs still owed by lines resident at the end,
		// so every protocol is charged for its full obligation.
		writes := m.Metrics().Bus.Writes()
		for _, e := range m.Cache(0).Entries() {
			if proto.WritebackOnEvict(e.State, e.Dirty) {
				writes++
			}
		}
		fmt.Printf("%-14s %12d %14.2f\n", proto.Name(), writes, float64(writes)/elements)
	}
	fmt.Println("\nRB pays twice per element; RWB's FirstWrite state halves the traffic")
	fmt.Println("(the paper's Section 5 claim, reproduced exactly).")
}
