// Quickstart: assemble the paper's machine — four processors with private
// snooping caches on one shared bus — run a mixed workload under the RB
// scheme with the consistency oracle enabled, and read the counters that
// the paper's comparisons are built from.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Each PE runs the synthetic application behind Table 1-1: code and
	// local-data reads with realistic locality, write-through local
	// writes, and a 5% sprinkle of shared references.
	layout := repro.DefaultLayout()
	var agents []repro.Agent
	for pe := 0; pe < 4; pe++ {
		app, err := repro.NewApp(repro.PDEProfile(), layout, pe, 1, 20000)
		if err != nil {
			log.Fatal(err)
		}
		agents = append(agents, app)
	}

	m, err := repro.NewMachine(repro.MachineConfig{
		Protocol:         repro.RB(),
		CacheLines:       1024,
		CheckConsistency: true, // every read is checked against the latest write
	}, agents)
	if err != nil {
		log.Fatal(err)
	}

	cycles, err := m.Run(10_000_000)
	if err != nil {
		log.Fatal(err) // a ConsistencyError would mean the protocol is broken
	}

	mt := m.Metrics()
	fmt.Printf("ran %d references in %d cycles\n", mt.TotalRefs(), cycles)
	fmt.Printf("bus transactions: %d (%.3f per reference)\n", mt.Bus.Transactions(), mt.BusPerRef())
	fmt.Printf("bus utilization:  %.2f\n", mt.Bus.Utilization())
	var hits, accesses uint64
	for _, cs := range mt.Caches {
		hits += cs.ReadHits + cs.WriteHits
		accesses += cs.Reads + cs.Writes
	}
	fmt.Printf("cache hit ratio:  %.3f\n", float64(hits)/float64(accesses))

	// The same machinery, model-checked: explore every interleaving for a
	// 4-cache product machine and verify the Section 4 lemma.
	res, err := repro.CheckProtocol(repro.RB(), 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model check: %d reachable states, consistent\n", res.States)
}
